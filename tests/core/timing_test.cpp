#include "squid/core/timing.hpp"

#include <gtest/gtest.h>

#include "squid/core/system.hpp"
#include "squid/workload/corpus.hpp"

namespace squid::core {
namespace {

TEST(Timing, EmptyAndTrivialDags) {
  Rng rng(171);
  const LinkModel model{};
  EXPECT_DOUBLE_EQ(sample_completion_ms({}, model, rng), 0.0);
  EXPECT_DOUBLE_EQ(sample_completion_ms({TimingEvent{}}, model, rng), 0.0);
}

TEST(Timing, DeterministicModelGivesExactChainCost) {
  Rng rng(172);
  const LinkModel model{10.0, 0.0, 1.0}; // no jitter
  // Chain: start -> 3 hops -> 2 hops.
  const std::vector<TimingEvent> chain{{-1, 0}, {0, 3}, {1, 2}};
  EXPECT_DOUBLE_EQ(sample_completion_ms(chain, model, rng),
                   3 * 10 + 1 + 2 * 10 + 1);
}

TEST(Timing, ParallelBranchesOverlap) {
  Rng rng(173);
  const LinkModel model{10.0, 0.0, 0.0};
  // Two independent branches off the start: 5 hops and 2 hops.
  const std::vector<TimingEvent> fan{{-1, 0}, {0, 5}, {0, 2}};
  // Completion = the slower branch, not the sum.
  EXPECT_DOUBLE_EQ(sample_completion_ms(fan, model, rng), 50.0);
}

TEST(Timing, JitterStaysWithinModelBounds) {
  Rng rng(174);
  const LinkModel model{10.0, 5.0, 0.0};
  const std::vector<TimingEvent> chain{{-1, 0}, {0, 4}};
  for (int i = 0; i < 200; ++i) {
    const double t = sample_completion_ms(chain, model, rng);
    EXPECT_GE(t, 40.0);
    EXPECT_LT(t, 60.0);
  }
}

TEST(Timing, EndToEndEstimateTracksCriticalPath) {
  Rng rng(175);
  workload::KeywordCorpus corpus(2, 200, 0.9, rng);
  SquidSystem sys(corpus.make_space());
  sys.build_network(80, rng);
  for (const auto& e : corpus.make_elements(2000, rng)) sys.publish(e);

  const auto result =
      sys.query(corpus.q1(0, true), sys.ring().random_node(rng));
  ASSERT_GT(result.timing.size(), 1u);

  const LinkModel model{20.0, 0.0, 0.0}; // deterministic
  const Summary latency = estimate_latency_ms(result, model, rng, 5);
  // With zero jitter the replay equals hops * base along the critical path.
  EXPECT_DOUBLE_EQ(
      latency.max(),
      20.0 * static_cast<double>(result.stats.critical_path_hops));

  // With jitter the mean moves up but stays below the all-hops bound.
  const LinkModel jittery{20.0, 20.0, 1.0};
  const Summary noisy = estimate_latency_ms(result, jittery, rng, 50);
  EXPECT_GT(noisy.mean(), latency.max());
  double total_hops = 0;
  for (const auto& e : result.timing) total_hops += e.hops;
  EXPECT_LT(noisy.max(), 41.0 * total_hops + result.timing.size());
}

TEST(Timing, BreakdownMatchesCompletionBitForBit) {
  // sample_completion_ms is defined as the max arrival of one replayed
  // breakdown; with identical rng seeds the two must agree to the last
  // bit — this is a regression fence for the refactor that split them.
  Rng rng(177);
  workload::KeywordCorpus corpus(2, 150, 0.9, rng);
  SquidSystem sys(corpus.make_space());
  sys.build_network(60, rng);
  sys.publish_batch(corpus.make_elements(1500, rng));

  const auto result =
      sys.query(corpus.q1(0, true), sys.ring().random_node(rng));
  ASSERT_GT(result.timing.size(), 1u);

  const LinkModel model{20.0, 20.0, 1.0};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng a(seed);
    Rng b(seed);
    const double completion = sample_completion_ms(result.timing, model, a);
    const auto events = sample_completion_breakdown(result.timing, model, b);
    ASSERT_EQ(events.size(), result.timing.size());
    double latest = 0.0;
    for (const auto& event : events) latest = std::max(latest, event.at_ms);
    EXPECT_EQ(completion, latest); // bitwise, not approximate
    // Both consumed the same number of draws: the streams stay in lockstep.
    EXPECT_EQ(a(), b());
  }
}

TEST(Timing, BreakdownRowsMirrorTheDag) {
  Rng rng(178);
  const LinkModel model{10.0, 0.0, 1.0}; // deterministic
  const std::vector<TimingEvent> dag{{-1, 0}, {0, 3}, {0, 1}, {2, 2}};
  const auto events = sample_completion_breakdown(dag, model, rng);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events[0].at_ms, 0.0); // the query start
  EXPECT_EQ(events[0].parent, -1);
  for (std::size_t i = 1; i < dag.size(); ++i) {
    EXPECT_EQ(events[i].parent, dag[i].parent);
    EXPECT_EQ(events[i].hops, dag[i].hops);
    // Each event arrives after its parent by exactly hops*base + processing.
    const auto parent = static_cast<std::size_t>(dag[i].parent);
    EXPECT_DOUBLE_EQ(events[i].at_ms,
                     events[parent].at_ms + 10.0 * dag[i].hops + 1.0);
  }
}

TEST(Timing, RejectsNegativeModel) {
  Rng rng(176);
  const std::vector<TimingEvent> chain{{-1, 0}, {0, 1}};
  EXPECT_THROW(
      (void)sample_completion_ms(chain, LinkModel{-1.0, 0.0, 0.0}, rng),
      std::invalid_argument);
}

} // namespace
} // namespace squid::core
