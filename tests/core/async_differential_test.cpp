// The message-driven runtime's bit-identicality lock (DESIGN.md 4e).
//
// query_engine.cpp resolves queries as typed messages on a sim::Engine;
// query_engine_reference.cpp is the seed's synchronous recursion, frozen as
// an oracle. On twin systems (same topology, same data, same config, twin
// fault injectors fed the same plan) the two paths must agree bit-for-bit:
//   - the element sequence, in arrival order (not just the sorted set),
//   - every QueryStats field,
//   - the timing DAG, entry by entry,
//   - the injector's RNG stream (draw counts and per-hazard tallies), and
//   - the trace, as a multiset of spans (delivery deferral reorders span
//     *records*, but the set of spans and every derive_stats aggregate are
//     identical).
// Runs the full differential config matrix, faults off AND on.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "squid/core/system.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/obs/trace.hpp"
#include "squid/sim/fault.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

using Config = std::tuple<std::string, unsigned, bool, bool>;
// curve, finger_base, aggregate, cache

class AsyncDifferential : public ::testing::TestWithParam<Config> {};

struct TwinWorld {
  std::unique_ptr<SquidSystem> live; ///< runs the message-driven engine
  std::unique_ptr<SquidSystem> ref;  ///< runs the frozen seed recursion
};

TwinWorld make_world(const Config& param, bool traced) {
  const auto& [curve, finger_base, aggregate, cache] = param;
  SquidConfig config;
  config.curve = curve;
  config.finger_base = finger_base;
  config.aggregate_subclusters = aggregate;
  config.cache_cluster_owners = cache;
  config.trace_queries = traced;

  const char letters[] = "abcde";
  const keyword::KeywordSpace space(
      {keyword::StringCodec(letters, 3), keyword::StringCodec(letters, 3)});
  TwinWorld world;
  world.live = std::make_unique<SquidSystem>(space, config);
  world.ref = std::make_unique<SquidSystem>(space, config);

  Rng rng_a(0xd1f ^ finger_base), rng_b(0xd1f ^ finger_base);
  world.live->build_network(35, rng_a);
  world.ref->build_network(35, rng_b);

  Rng rng(0xbeef);
  for (int i = 0; i < 400; ++i) {
    std::string a, b;
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      a.push_back(letters[rng.below(5)]);
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      b.push_back(letters[rng.below(5)]);
    const DataElement e{"e" + std::to_string(i), {a, b}};
    world.live->publish(e);
    world.ref->publish(e);
  }
  return world;
}

keyword::Query random_query(Rng& rng) {
  const char letters[] = "abcde";
  keyword::Query q;
  for (int dim = 0; dim < 2; ++dim) {
    const auto kind = rng.below(3);
    if (kind == 0) {
      q.terms.push_back(keyword::Any{});
    } else {
      std::string w;
      for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
        w.push_back(letters[rng.below(5)]);
      if (kind == 1) {
        q.terms.push_back(keyword::Whole{w});
      } else {
        q.terms.push_back(keyword::Prefix{w});
      }
    }
  }
  return q;
}

std::vector<std::string> names_in_order(const QueryResult& r) {
  std::vector<std::string> names;
  for (const auto& e : r.elements) names.push_back(e.name);
  return names;
}

#if SQUID_OBS_ENABLED
/// Order-independent span fingerprint: everything except the indices that
/// depend on record order (parent / event / path slots).
using SpanKey =
    std::tuple<obs::SpanKind, overlay::NodeId, unsigned, sim::Time, sim::Time,
               std::uint32_t, std::uint32_t, std::uint32_t, u128, u128,
               std::uint64_t, std::uint64_t, std::uint64_t>;

std::vector<SpanKey> span_multiset(const obs::Trace& trace) {
  std::vector<SpanKey> keys;
  keys.reserve(trace.spans.size());
  for (const obs::Span& s : trace.spans) {
    keys.emplace_back(s.kind, s.node, s.level, s.start, s.end, s.hops,
                      s.messages, s.batch, s.range_lo, s.range_hi,
                      s.keys_scanned, s.keys_matched, s.matches);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}
#endif

void expect_identical(const QueryResult& live, const QueryResult& ref,
                      const std::string& context) {
  EXPECT_EQ(names_in_order(live), names_in_order(ref)) << context;
  EXPECT_EQ(live.complete, ref.complete) << context;
  EXPECT_EQ(live.stats.matches, ref.stats.matches) << context;
  EXPECT_EQ(live.stats.routing_nodes, ref.stats.routing_nodes) << context;
  EXPECT_EQ(live.stats.processing_nodes, ref.stats.processing_nodes)
      << context;
  EXPECT_EQ(live.stats.data_nodes, ref.stats.data_nodes) << context;
  EXPECT_EQ(live.stats.messages, ref.stats.messages) << context;
  EXPECT_EQ(live.stats.critical_path_hops, ref.stats.critical_path_hops)
      << context;
  EXPECT_EQ(live.stats.retries, ref.stats.retries) << context;
  EXPECT_EQ(live.stats.failed_clusters, ref.stats.failed_clusters) << context;
  ASSERT_EQ(live.timing.size(), ref.timing.size()) << context;
  for (std::size_t i = 0; i < live.timing.size(); ++i) {
    EXPECT_EQ(live.timing[i].parent, ref.timing[i].parent)
        << context << " timing " << i;
    EXPECT_EQ(live.timing[i].hops, ref.timing[i].hops)
        << context << " timing " << i;
  }
#if SQUID_OBS_ENABLED
  ASSERT_EQ(live.trace != nullptr, ref.trace != nullptr) << context;
  if (live.trace) {
    EXPECT_EQ(span_multiset(*live.trace), span_multiset(*ref.trace))
        << context;
    const QueryStats live_derived = obs::derive_stats(*live.trace);
    const QueryStats ref_derived = obs::derive_stats(*ref.trace);
    EXPECT_EQ(live_derived.messages, ref_derived.messages) << context;
    EXPECT_EQ(live_derived.retries, ref_derived.retries) << context;
    EXPECT_EQ(live_derived.failed_clusters, ref_derived.failed_clusters)
        << context;
  }
#endif
}

TEST_P(AsyncDifferential, FaultFreeQueriesMatchTheSeedRecursion) {
  TwinWorld world = make_world(GetParam(), /*traced=*/obs::kEnabled);
  Rng rng(0x90ff);
  for (int trial = 0; trial < 40; ++trial) {
    const keyword::Query q = random_query(rng);
    const auto origin = world.live->ring().random_node(rng);
    const std::string context =
        keyword::to_string(q) + " trial " + std::to_string(trial);
    expect_identical(world.live->query(q, origin),
                     world.ref->query_reference(q, origin), context);
  }
}

TEST_P(AsyncDifferential, CountQueriesMatchTheSeedRecursion) {
  TwinWorld world = make_world(GetParam(), /*traced=*/false);
  Rng rng(0xc0c0);
  for (int trial = 0; trial < 20; ++trial) {
    const keyword::Query q = random_query(rng);
    const auto origin = world.live->ring().random_node(rng);
    EXPECT_EQ(world.live->count(q, origin),
              world.ref->count_reference(q, origin))
        << keyword::to_string(q);
  }
}

TEST_P(AsyncDifferential, CentralizedQueriesMatchTheSeedRecursion) {
  TwinWorld world = make_world(GetParam(), /*traced=*/obs::kEnabled);
  Rng rng(0xce47);
  for (int trial = 0; trial < 10; ++trial) {
    const keyword::Query q = random_query(rng);
    const auto origin = world.live->ring().random_node(rng);
    expect_identical(world.live->query_centralized(q, origin),
                     world.ref->query_centralized_reference(q, origin),
                     keyword::to_string(q) + " [centralized]");
  }
}

TEST_P(AsyncDifferential, FaultedQueriesMatchIncludingTheRngStream) {
  TwinWorld world = make_world(GetParam(), /*traced=*/obs::kEnabled);

  sim::FaultPlan plan;
  plan.seed = 0x5eed;
  plan.drop_probability = 0.06;
  plan.delay_probability = 0.15;
  plan.max_delay = 3;
  plan.duplicate_probability = 0.08;
  sim::FaultInjector live_injector(plan);
  sim::FaultInjector ref_injector(plan);
  world.live->set_fault_injector(&live_injector);
  world.ref->set_fault_injector(&ref_injector);

  Rng rng(0xfa17);
  for (int trial = 0; trial < 40; ++trial) {
    const keyword::Query q = random_query(rng);
    const auto origin = world.live->ring().random_node(rng);
    const std::string context =
        keyword::to_string(q) + " faulted trial " + std::to_string(trial);
    expect_identical(world.live->query(q, origin),
                     world.ref->query_reference(q, origin), context);
    // The strongest invariant: both paths consumed the injector's stream
    // identically, draw for draw — any ordering drift desynchronizes the
    // twins for every later trial.
    ASSERT_EQ(live_injector.rng_draws(), ref_injector.rng_draws()) << context;
    EXPECT_EQ(live_injector.dropped(), ref_injector.dropped()) << context;
    EXPECT_EQ(live_injector.delayed(), ref_injector.delayed()) << context;
    EXPECT_EQ(live_injector.duplicated(), ref_injector.duplicated())
        << context;
    EXPECT_EQ(live_injector.pending_timeout_reports(),
              ref_injector.pending_timeout_reports())
        << context;
  }
  EXPECT_GT(live_injector.rng_draws(), 0u);
}

TEST_P(AsyncDifferential, PartitionWindowsApplyAtTheInjectorClock) {
  // The lockstep engine is constructed at the injector's current virtual
  // time, so partition windows keyed on absolute time sever the same sends
  // in both paths — including after set_now() time travel.
  TwinWorld world = make_world(GetParam(), /*traced=*/false);

  sim::FaultPlan plan;
  plan.partitions.push_back({0, 1 << 20, u128{1} << 100});
  sim::FaultInjector live_injector(plan);
  sim::FaultInjector ref_injector(plan);
  world.live->set_fault_injector(&live_injector);
  world.ref->set_fault_injector(&ref_injector);

  Rng rng(0x9a27);
  for (int trial = 0; trial < 10; ++trial) {
    const keyword::Query q = random_query(rng);
    const auto origin = world.live->ring().random_node(rng);
    expect_identical(world.live->query(q, origin),
                     world.ref->query_reference(q, origin),
                     "partition trial " + std::to_string(trial));
  }
  // Time-travel both injectors past the window: partitions lift in both.
  live_injector.set_now(1 << 20);
  ref_injector.set_now(1 << 20);
  for (int trial = 0; trial < 5; ++trial) {
    const keyword::Query q = random_query(rng);
    const auto origin = world.live->ring().random_node(rng);
    const auto live = world.live->query(q, origin);
    expect_identical(live, world.ref->query_reference(q, origin),
                     "lifted trial " + std::to_string(trial));
    EXPECT_TRUE(live.complete);
  }
  EXPECT_EQ(live_injector.partition_drops(), ref_injector.partition_drops());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AsyncDifferential,
    ::testing::Values(Config{"hilbert", 2, true, false},
                      Config{"hilbert", 2, false, false},
                      Config{"hilbert", 2, true, true},
                      Config{"hilbert", 8, true, false},
                      Config{"hilbert", 8, true, true},
                      Config{"zorder", 2, true, false},
                      Config{"zorder", 4, false, true},
                      Config{"gray", 2, true, false},
                      Config{"gray", 16, true, true}),
    [](const auto& info) {
      return std::get<0>(info.param) + "_b" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_agg" : "_noagg") +
             (std::get<3>(info.param) ? "_cache" : "_nocache");
    });

} // namespace
} // namespace squid::core
