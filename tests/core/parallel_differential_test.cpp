// The sharded runtime's bit-identicality lock (DESIGN.md 4f).
//
// query_parallel runs batches on S shard worker threads; query() runs the
// lockstep message engine (itself locked to the frozen seed recursion by
// async_differential_test.cpp). On twin systems the two must agree
// bit-for-bit per query — the element sequence IN ORDER, every QueryStats
// field, the timing DAG, the trace span multiset, completion — for every
// shard count, regardless of thread interleaving. With a fault plan, each
// parallel query k runs under fork_plan(plan, k); replaying the same forks
// sequentially must consume the RNG streams draw-for-draw identically.
//
// Shard counts default to {1, 2, 4}; the SQUID_PARALLEL_SHARDS env var
// (comma-separated) overrides — CI's TSan job sets "2,4" to spend its time
// on the genuinely concurrent cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "squid/core/parallel.hpp"
#include "squid/core/system.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/obs/trace.hpp"
#include "squid/sim/fault.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

using Config = std::tuple<std::string, unsigned, bool, bool>;
// curve, finger_base, aggregate, cache

class ParallelDifferential : public ::testing::TestWithParam<Config> {};

std::vector<unsigned> shard_counts() {
  const char* env = std::getenv("SQUID_PARALLEL_SHARDS");
  if (env == nullptr || *env == '\0') return {1, 2, 4};
  std::vector<unsigned> out;
  unsigned current = 0;
  bool any = false;
  for (const char* p = env;; ++p) {
    if (*p >= '0' && *p <= '9') {
      current = current * 10 + static_cast<unsigned>(*p - '0');
      any = true;
    } else {
      if (any && current > 0) out.push_back(current);
      current = 0;
      any = false;
      if (*p == '\0') break;
    }
  }
  return out.empty() ? std::vector<unsigned>{1, 2, 4} : out;
}

struct TwinWorld {
  std::unique_ptr<SquidSystem> live; ///< runs the sharded executor
  std::unique_ptr<SquidSystem> ref;  ///< runs lockstep query()
};

TwinWorld make_world(const Config& param, bool traced) {
  const auto& [curve, finger_base, aggregate, cache] = param;
  SquidConfig config;
  config.curve = curve;
  config.finger_base = finger_base;
  config.aggregate_subclusters = aggregate;
  config.cache_cluster_owners = cache;
  config.trace_queries = traced;

  const char letters[] = "abcde";
  const keyword::KeywordSpace space(
      {keyword::StringCodec(letters, 3), keyword::StringCodec(letters, 3)});
  TwinWorld world;
  world.live = std::make_unique<SquidSystem>(space, config);
  world.ref = std::make_unique<SquidSystem>(space, config);

  Rng rng_a(0xd1f ^ finger_base), rng_b(0xd1f ^ finger_base);
  world.live->build_network(35, rng_a);
  world.ref->build_network(35, rng_b);

  Rng rng(0xbeef);
  for (int i = 0; i < 400; ++i) {
    std::string a, b;
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      a.push_back(letters[rng.below(5)]);
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      b.push_back(letters[rng.below(5)]);
    const DataElement e{"e" + std::to_string(i), {a, b}};
    world.live->publish(e);
    world.ref->publish(e);
  }
  return world;
}

keyword::Query random_query(Rng& rng) {
  const char letters[] = "abcde";
  keyword::Query q;
  for (int dim = 0; dim < 2; ++dim) {
    const auto kind = rng.below(3);
    if (kind == 0) {
      q.terms.push_back(keyword::Any{});
    } else {
      std::string w;
      for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
        w.push_back(letters[rng.below(5)]);
      if (kind == 1) {
        q.terms.push_back(keyword::Whole{w});
      } else {
        q.terms.push_back(keyword::Prefix{w});
      }
    }
  }
  return q;
}

std::vector<ParallelQuerySpec> random_batch(const SquidSystem& sys,
                                            std::size_t count,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ParallelQuerySpec> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ParallelQuerySpec spec;
    spec.query = random_query(rng);
    spec.origin = sys.ring().random_node(rng);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<std::string> names_in_order(const QueryResult& r) {
  std::vector<std::string> names;
  for (const auto& e : r.elements) names.push_back(e.name);
  return names;
}

#if SQUID_OBS_ENABLED
/// Order-independent span fingerprint: everything except the indices that
/// depend on record order (parent / event / path slots).
using SpanKey =
    std::tuple<obs::SpanKind, overlay::NodeId, unsigned, sim::Time, sim::Time,
               std::uint32_t, std::uint32_t, std::uint32_t, u128, u128,
               std::uint64_t, std::uint64_t, std::uint64_t>;

std::vector<SpanKey> span_multiset(const obs::Trace& trace) {
  std::vector<SpanKey> keys;
  keys.reserve(trace.spans.size());
  for (const obs::Span& s : trace.spans) {
    keys.emplace_back(s.kind, s.node, s.level, s.start, s.end, s.hops,
                      s.messages, s.batch, s.range_lo, s.range_hi,
                      s.keys_scanned, s.keys_matched, s.matches);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}
#endif

void expect_identical(const QueryResult& par, const QueryResult& ref,
                      const std::string& context) {
  EXPECT_EQ(names_in_order(par), names_in_order(ref)) << context;
  EXPECT_EQ(par.complete, ref.complete) << context;
  EXPECT_EQ(par.stats.matches, ref.stats.matches) << context;
  EXPECT_EQ(par.stats.routing_nodes, ref.stats.routing_nodes) << context;
  EXPECT_EQ(par.stats.processing_nodes, ref.stats.processing_nodes) << context;
  EXPECT_EQ(par.stats.data_nodes, ref.stats.data_nodes) << context;
  EXPECT_EQ(par.stats.messages, ref.stats.messages) << context;
  EXPECT_EQ(par.stats.critical_path_hops, ref.stats.critical_path_hops)
      << context;
  EXPECT_EQ(par.stats.retries, ref.stats.retries) << context;
  EXPECT_EQ(par.stats.failed_clusters, ref.stats.failed_clusters) << context;
  // Reply-path accounting is a sum of per-scan measured terms, so it must
  // be mode-identical too.
  EXPECT_EQ(par.stats.bytes_shipped, ref.stats.bytes_shipped) << context;
  EXPECT_EQ(par.stats.reply_messages, ref.stats.reply_messages) << context;
  ASSERT_EQ(par.timing.size(), ref.timing.size()) << context;
  for (std::size_t i = 0; i < par.timing.size(); ++i) {
    EXPECT_EQ(par.timing[i].parent, ref.timing[i].parent)
        << context << " timing " << i;
    EXPECT_EQ(par.timing[i].hops, ref.timing[i].hops)
        << context << " timing " << i;
  }
#if SQUID_OBS_ENABLED
  ASSERT_EQ(par.trace != nullptr, ref.trace != nullptr) << context;
  if (par.trace) {
    EXPECT_EQ(span_multiset(*par.trace), span_multiset(*ref.trace)) << context;
    const QueryStats par_derived = obs::derive_stats(*par.trace);
    const QueryStats ref_derived = obs::derive_stats(*ref.trace);
    EXPECT_EQ(par_derived.messages, ref_derived.messages) << context;
    EXPECT_EQ(par_derived.retries, ref_derived.retries) << context;
    EXPECT_EQ(par_derived.failed_clusters, ref_derived.failed_clusters)
        << context;
  }
#endif
}

TEST_P(ParallelDifferential, FaultFreeBatchesMatchLockstepAtEveryShardCount) {
  TwinWorld world = make_world(GetParam(), /*traced=*/obs::kEnabled);
  const std::vector<ParallelQuerySpec> specs =
      random_batch(*world.live, 24, 0x90ff);
  for (unsigned shards : shard_counts()) {
    ParallelOptions opts;
    opts.shards = shards;
    const ParallelRun run = world.live->query_parallel(specs, opts);
    ASSERT_EQ(run.results.size(), specs.size());
    EXPECT_TRUE(run.faults.empty());
    // Sequential replay on the twin, in submit order (the owner cache, when
    // on, evolves with that order in both paths).
    for (std::size_t k = 0; k < specs.size(); ++k) {
      expect_identical(run.results[k],
                       world.ref->query(specs[k].query, specs[k].origin),
                       "S=" + std::to_string(shards) + " query " +
                           std::to_string(k));
    }
    // A fresh twin per shard count when the cache couples runs.
    if (std::get<3>(GetParam())) world = make_world(GetParam(), obs::kEnabled);
  }
}

TEST_P(ParallelDifferential, FaultedBatchesMatchIncludingPerQueryRngStreams) {
  sim::FaultPlan plan;
  plan.seed = 0x5eed;
  plan.drop_probability = 0.06;
  plan.delay_probability = 0.15;
  plan.max_delay = 3;
  plan.duplicate_probability = 0.08;

  TwinWorld world = make_world(GetParam(), /*traced=*/obs::kEnabled);
  const std::vector<ParallelQuerySpec> specs =
      random_batch(*world.live, 24, 0xfa17);
  std::uint64_t total_draws = 0;
  for (unsigned shards : shard_counts()) {
    ParallelOptions opts;
    opts.shards = shards;
    opts.faults = &plan;
    const ParallelRun run = world.live->query_parallel(specs, opts);
    ASSERT_EQ(run.results.size(), specs.size());
    ASSERT_EQ(run.faults.size(), specs.size());
    for (std::size_t k = 0; k < specs.size(); ++k) {
      const std::string context = "S=" + std::to_string(shards) + " faulted " +
                                  std::to_string(k);
      // Replay the same per-query fork sequentially: answers AND the
      // injector's whole RNG stream must match draw for draw — any planning
      // order drift in the parallel path desynchronizes the stream.
      sim::FaultInjector injector(sim::fork_plan(plan, k));
      world.ref->set_fault_injector(&injector);
      expect_identical(run.results[k],
                       world.ref->query(specs[k].query, specs[k].origin),
                       context);
      EXPECT_EQ(run.faults[k].rng_draws, injector.rng_draws()) << context;
      EXPECT_EQ(run.faults[k].dropped, injector.dropped()) << context;
      EXPECT_EQ(run.faults[k].delayed, injector.delayed()) << context;
      EXPECT_EQ(run.faults[k].duplicated, injector.duplicated()) << context;
      total_draws += injector.rng_draws();
    }
    world.ref->set_fault_injector(nullptr);
    if (std::get<3>(GetParam())) world = make_world(GetParam(), obs::kEnabled);
  }
  EXPECT_GT(total_draws, 0u); // the plan actually exercised the fault path
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ParallelDifferential,
    ::testing::Values(Config{"hilbert", 2, true, false},
                      Config{"hilbert", 2, false, false},
                      Config{"hilbert", 2, true, true},
                      Config{"hilbert", 8, true, false},
                      Config{"hilbert", 8, true, true},
                      Config{"zorder", 2, true, false},
                      Config{"zorder", 4, false, true},
                      Config{"gray", 2, true, false},
                      Config{"gray", 16, true, true}),
    [](const auto& info) {
      return std::get<0>(info.param) + "_b" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_agg" : "_noagg") +
             (std::get<3>(info.param) ? "_cache" : "_nocache");
    });

TEST(ParallelExecutorTest, HandoffBatchLimitDoesNotChangeAnswers) {
  // The staging flush threshold only moves WHEN jobs cross the mailbox, not
  // what they compute: every limit must produce the same batch of results.
  TwinWorld world = make_world(Config{"hilbert", 2, true, false},
                               /*traced=*/false);
  const std::vector<ParallelQuerySpec> specs =
      random_batch(*world.live, 16, 0xba7c);
  std::vector<std::vector<std::string>> runs;
  for (std::size_t limit : {std::size_t{1}, std::size_t{4}, std::size_t{64}}) {
    ParallelOptions opts;
    opts.shards = 2;
    opts.handoff_batch = limit;
    const ParallelRun run = world.live->query_parallel(specs, opts);
    std::vector<std::string> flat;
    for (const QueryResult& r : run.results) {
      flat.push_back("|" + std::to_string(r.stats.messages));
      for (const auto& name : names_in_order(r)) flat.push_back(name);
    }
    runs.push_back(std::move(flat));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelExecutorTest, ShardCountersAccountTheRun) {
  // squid.runtime.shard.* totals move when a parallel batch runs. With the
  // obs layer compiled out the registry is inert and there is nothing to
  // observe.
  if (!obs::kEnabled) GTEST_SKIP() << "obs layer compiled out";
  auto& r = obs::Registry::global();
  TwinWorld world = make_world(Config{"hilbert", 2, true, false},
                               /*traced=*/false);
  const std::vector<ParallelQuerySpec> specs =
      random_batch(*world.live, 12, 0x0b5);
  const std::uint64_t delivered0 =
      r.counter("squid.runtime.shard.messages_delivered").value();
  ParallelOptions opts;
  opts.shards = 4;
  const ParallelRun run = world.live->query_parallel(specs, opts);
  ASSERT_EQ(run.results.size(), specs.size());
  EXPECT_GT(r.counter("squid.runtime.shard.messages_delivered").value(),
            delivered0);
}

} // namespace
} // namespace squid::core
