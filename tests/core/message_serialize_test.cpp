// Wire round-trips for the query runtime's typed messages (DESIGN.md 4e):
// every msg::Message alternative must survive save_message -> load_message
// bit-exactly, and every truncated or corrupted frame must fail loudly
// (std::invalid_argument) instead of yielding a half-parsed message.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "squid/core/messages.hpp"
#include "squid/core/serialize.hpp"
#include "squid/util/u128.hpp"

namespace squid::core {
namespace {

std::string encode(const msg::Message& message) {
  std::ostringstream out;
  save_message(message, out);
  return out.str();
}

msg::Message decode(const std::string& text) {
  std::istringstream in(text);
  return load_message(in);
}

template <typename T> T round_trip(const T& message) {
  const msg::Message back = decode(encode(msg::Message{message}));
  EXPECT_TRUE(std::holds_alternative<T>(back));
  return std::get<T>(back);
}

constexpr u128 kHuge = ~u128{0}; // exercise the full 128-bit range

msg::ResolveRequest sample_resolve() {
  msg::ResolveRequest r;
  r.query = 0xfeedface01234567ull;
  r.at = kHuge - 5;
  r.clusters.clusters = {{0, 0}, {kHuge >> 1, 63}, {42, 7}};
  r.event = 12;
  r.span = -1;
  return r;
}

msg::ClusterDispatch sample_dispatch() {
  msg::ClusterDispatch d;
  d.query = 1;
  d.from = 17;
  d.to = kHuge;
  d.head = {kHuge - 1, 128};
  d.batch.clusters = {{3, 2}, {9, 4}};
  d.event = 3;
  d.span = 44;
  return d;
}

msg::ScanRequest sample_scan() {
  msg::ScanRequest s;
  s.query = 0;
  s.at = 99;
  s.segment = {kHuge / 3, kHuge / 2};
  s.covered = true;
  s.agg.kind = AggregateKind::kTopK;
  s.agg.dim = 1;
  s.agg.k = 8;
  s.agg.largest = false;
  s.slot = 41;
  s.event = 0;
  s.span = -1;
  return s;
}

msg::Reply sample_reply() {
  msg::Reply r;
  r.query = 7;
  r.from = 5;
  r.to = 6;
  r.complete = false;
  r.count = 1234;
  r.elements = {DataElement{"alpha", {"ab", "cd"}},
                DataElement{"with space", {"", "x y z"}}};
  return r;
}

/// A reply carrying an aggregate partial with every field populated —
/// non-trivial ExactSum limbs, extremes, groups, and a sorted top list.
msg::Reply sample_aggregate_reply() {
  AggregateSpec spec;
  spec.kind = AggregateKind::kTopK;
  spec.dim = 1;
  spec.k = 3;
  spec.largest = true;
  AggregatePartial partial = make_partial(spec);
  partial.fold(DataElement{"a", {std::string("x"), 0.1}});
  partial.fold(DataElement{"b", {std::string("y"), -1e300}});
  partial.fold(DataElement{"c", {std::string("z"), 5e-324}});
  partial.fold(DataElement{"d", {std::string("w"), 0.1}}); // value tie
  partial.sum.add(0.2); // desync sum from the folds: arbitrary limbs ship
  partial.has_extremes = true;
  partial.min = -1e300;
  partial.max = 0.1;
  partial.groups = {{"g/a", 2}, {"g/b", 7}};

  msg::Reply r;
  r.query = 9;
  r.from = kHuge - 2;
  r.to = 1;
  r.complete = true;
  r.count = partial.count;
  r.aggregate = std::make_shared<const AggregatePartial>(std::move(partial));
  return r;
}

/// Update frames (DESIGN.md 4j) with both token flavors: an exact-binary
/// awkward double (negative, non-representable decimal) and strings with
/// spaces, so the element codec — not just the header — is exercised.
msg::PublishRequest sample_publish() {
  msg::PublishRequest p;
  p.seq = 0xdeadbeef01234567ull;
  p.origin = kHuge - 3;
  p.to = 7;
  p.element = DataElement{"obj 42", {-1234.5625, std::string("a b c")}};
  p.event = 5;
  p.span = -1;
  return p;
}

msg::RetractRequest sample_retract() {
  msg::RetractRequest r;
  r.seq = 1;
  r.origin = 0;
  r.to = kHuge;
  r.element = DataElement{"", {std::string(""), 0.1}};
  r.event = 0;
  r.span = 12;
  return r;
}

TEST(MessageSerialize, ResolveRequestRoundTrips) {
  const msg::ResolveRequest r = sample_resolve();
  EXPECT_EQ(round_trip(r), r);
}

TEST(MessageSerialize, ClusterDispatchRoundTrips) {
  const msg::ClusterDispatch d = sample_dispatch();
  EXPECT_EQ(round_trip(d), d);
}

TEST(MessageSerialize, ScanRequestRoundTrips) {
  const msg::ScanRequest s = sample_scan();
  EXPECT_EQ(round_trip(s), s);
}

TEST(MessageSerialize, ReplyRoundTrips) {
  const msg::Reply r = sample_reply();
  EXPECT_EQ(round_trip(r), r);
}

TEST(MessageSerialize, UpdateFramesRoundTripBitExactly) {
  const msg::PublishRequest p = sample_publish();
  const msg::PublishRequest p2 = round_trip(p);
  EXPECT_EQ(p2, p);
  // The numeric token must come back bit-exact, not decimal-close: retract
  // matching is by name AND keys, so a 1-ulp wobble would strand elements.
  ASSERT_EQ(p2.element.keys.size(), 2u);
  EXPECT_EQ(std::get<double>(p2.element.keys[0]), -1234.5625);

  const msg::RetractRequest r = sample_retract();
  EXPECT_EQ(round_trip(r), r);
}

TEST(MessageSerialize, AggregateReplyRoundTripsBitExactly) {
  const msg::Reply r = sample_aggregate_reply();
  const msg::Reply back = round_trip(r);
  EXPECT_EQ(back, r); // Reply::operator== compares the partial by value
  ASSERT_NE(back.aggregate, nullptr);
  // The ExactSum travels limb-for-limb: the decoded accumulator must carry
  // the identical 2304-bit state, not just a close double.
  EXPECT_EQ(back.aggregate->sum, r.aggregate->sum);
  EXPECT_EQ(back.aggregate->top, r.aggregate->top);
  EXPECT_EQ(back.aggregate->groups, r.aggregate->groups);
}

TEST(MessageSerialize, EveryAggregateKindRoundTripsOnScanAndReply) {
  for (AggregateKind kind :
       {AggregateKind::kNone, AggregateKind::kCount, AggregateKind::kSum,
        AggregateKind::kMin, AggregateKind::kMax, AggregateKind::kGroupBy,
        AggregateKind::kTopK}) {
    msg::ScanRequest s = sample_scan();
    s.agg = AggregateSpec{};
    s.agg.kind = kind;
    if (kind == AggregateKind::kTopK) s.agg.k = 2;
    EXPECT_EQ(round_trip(s), s) << aggregate_kind_name(kind);

    AggregatePartial partial = make_partial(s.agg);
    if (kind == AggregateKind::kSum) partial.sum.add(-0.25);
    msg::Reply r;
    r.query = 3;
    r.aggregate = std::make_shared<const AggregatePartial>(std::move(partial));
    EXPECT_EQ(round_trip(r), r) << aggregate_kind_name(kind);
  }
}

TEST(MessageSerialize, SaveReportsTheExactEncodedSizeAndLoadConsumesIt) {
  const std::vector<msg::Message> all = {
      msg::Message{sample_resolve()},         msg::Message{sample_dispatch()},
      msg::Message{sample_scan()},            msg::Message{sample_reply()},
      msg::Message{sample_aggregate_reply()}, msg::Message{sample_publish()},
      msg::Message{sample_retract()}};
  for (const msg::Message& message : all) {
    std::ostringstream out;
    const std::size_t saved = save_message(message, out);
    EXPECT_EQ(saved, out.str().size()) << msg::type_name(message);
    EXPECT_EQ(wire_size(message), saved) << msg::type_name(message);
    std::istringstream in(out.str());
    std::size_t consumed = 0;
    (void)load_message(in, &consumed);
    EXPECT_EQ(consumed, saved) << msg::type_name(message);
  }
}

TEST(MessageSerialize, CorruptAggregateFramesAreRejected) {
  // Out-of-range kind byte.
  {
    std::string text = encode(msg::Message{sample_scan()});
    const std::size_t pos = text.find(" 6 1 8 0 "); // kTopK spec: kind 6
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 3, " 9 ");
    EXPECT_THROW(decode(text), std::invalid_argument);
  }
  // Group keys must arrive strictly ascending (the canonical sorted form).
  {
    msg::Reply r = sample_aggregate_reply();
    AggregatePartial tampered = *r.aggregate;
    std::swap(tampered.groups[0], tampered.groups[1]);
    r.aggregate = std::make_shared<const AggregatePartial>(std::move(tampered));
    EXPECT_THROW(decode(encode(msg::Message{r})), std::invalid_argument);
  }
  // Top entries must respect the spec's total order.
  {
    msg::Reply r = sample_aggregate_reply();
    AggregatePartial tampered = *r.aggregate;
    ASSERT_GE(tampered.top.size(), 2u);
    std::swap(tampered.top.front(), tampered.top.back());
    r.aggregate = std::make_shared<const AggregatePartial>(std::move(tampered));
    EXPECT_THROW(decode(encode(msg::Message{r})), std::invalid_argument);
  }
}

TEST(MessageSerialize, EmptyAggregatesAndElementListsRoundTrip) {
  msg::ResolveRequest r;
  r.query = 2;
  r.at = 0;
  EXPECT_TRUE(r.clusters.clusters.empty());
  EXPECT_EQ(round_trip(r), r);

  msg::Reply reply;
  reply.query = 2;
  EXPECT_TRUE(reply.elements.empty());
  EXPECT_EQ(round_trip(reply), reply);
}

TEST(MessageSerialize, DestinationAndTypeNameMatchTheAlternative) {
  EXPECT_EQ(msg::destination_of(msg::Message{sample_resolve()}),
            sample_resolve().at);
  EXPECT_EQ(msg::destination_of(msg::Message{sample_dispatch()}),
            sample_dispatch().to);
  EXPECT_EQ(msg::destination_of(msg::Message{sample_scan()}),
            sample_scan().at);
  EXPECT_EQ(msg::destination_of(msg::Message{sample_reply()}),
            sample_reply().to);
  EXPECT_EQ(msg::destination_of(msg::Message{sample_publish()}),
            sample_publish().to);
  EXPECT_EQ(msg::destination_of(msg::Message{sample_retract()}),
            sample_retract().to);
  EXPECT_EQ(std::string(msg::type_name(msg::Message{sample_scan()})), "scan");
  EXPECT_EQ(std::string(msg::type_name(msg::Message{sample_reply()})),
            "reply");
  EXPECT_EQ(std::string(msg::type_name(msg::Message{sample_publish()})),
            "publish");
  EXPECT_EQ(std::string(msg::type_name(msg::Message{sample_retract()})),
            "retract");
}

TEST(MessageSerialize, EveryTruncationFailsLoudly) {
  const std::vector<msg::Message> all = {
      msg::Message{sample_resolve()},         msg::Message{sample_dispatch()},
      msg::Message{sample_scan()},            msg::Message{sample_reply()},
      msg::Message{sample_aggregate_reply()}, msg::Message{sample_publish()},
      msg::Message{sample_retract()}};
  for (const msg::Message& message : all) {
    const std::string full = encode(message);
    // Drop whitespace-delimited tokens from the tail one at a time; every
    // proper prefix that ends at a token boundary must throw rather than
    // decode to *any* message.
    for (std::size_t cut = 0; cut < full.size(); cut = full.find(' ', cut + 1)) {
      const std::string prefix = full.substr(0, cut);
      EXPECT_THROW(decode(prefix), std::invalid_argument)
          << msg::type_name(message) << " truncated to " << cut << " bytes";
      if (full.find(' ', cut + 1) == std::string::npos) break;
    }
  }
}

TEST(MessageSerialize, BadMagicAndUnknownTagAreRejected) {
  EXPECT_THROW(decode(""), std::invalid_argument);
  EXPECT_THROW(decode("SQUID-SNAPSHOT-1 resolve 1"), std::invalid_argument);
  EXPECT_THROW(decode("SQUID-MSG-1 gossip 1 2 3"), std::invalid_argument);

  std::string full = encode(msg::Message{sample_scan()});
  full.replace(full.find("scan"), 4, "scam");
  EXPECT_THROW(decode(full), std::invalid_argument);
}

TEST(MessageSerialize, GarbageFieldsAreRejected) {
  // A non-numeric id where a u128 is expected.
  EXPECT_THROW(decode("SQUID-MSG-1 scan 1 banana 0 0 0 0 -1"),
               std::invalid_argument);
}

TEST(MessageSerialize, CorruptUpdateFramesAreRejected) {
  // A misspelled update tag is an unknown message type, not a fallback.
  {
    std::string text = encode(msg::Message{sample_publish()});
    text.replace(text.find("publish"), 7, "publush");
    EXPECT_THROW(decode(text), std::invalid_argument);
  }
  // A retract downgraded to a bare prefix of its element dies loudly.
  {
    const std::string full = encode(msg::Message{sample_retract()});
    EXPECT_THROW(decode(full.substr(0, full.size() / 2)),
                 std::invalid_argument);
  }
  // Garbage where the origin id should be.
  EXPECT_THROW(decode("SQUID-MSG-1 publish 7 banana 3"),
               std::invalid_argument);
}

} // namespace
} // namespace squid::core
