#include "squid/core/serialize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "squid/workload/corpus.hpp"

namespace squid::core {
namespace {

constexpr const char* kAlpha = "abcdefghijklmnopqrstuvwxyz";

keyword::KeywordSpace doc_space() {
  return keyword::KeywordSpace(
      {keyword::StringCodec(kAlpha, 4), keyword::StringCodec(kAlpha, 4)});
}

keyword::KeywordSpace mixed_space() {
  return keyword::KeywordSpace(
      {keyword::StringCodec(kAlpha, 4), keyword::NumericCodec(0, 1000, 10)});
}

TEST(Snapshot, RoundTripPreservesMembershipAndData) {
  Rng rng(151);
  workload::KeywordCorpus corpus(2, 200, 0.9, rng);
  SquidSystem original(corpus.make_space());
  original.build_network(50, rng);
  for (const auto& e : corpus.make_elements(800, rng)) original.publish(e);

  std::stringstream snapshot;
  save_snapshot(original, snapshot);

  SquidSystem restored(corpus.make_space());
  load_snapshot(restored, snapshot);

  EXPECT_EQ(restored.ring().size(), original.ring().size());
  EXPECT_EQ(restored.ring().node_ids(), original.ring().node_ids());
  EXPECT_EQ(restored.key_count(), original.key_count());
  EXPECT_EQ(restored.element_count(), original.element_count());
  EXPECT_TRUE(restored.ring().ring_consistent());

  // Queries against the restored system match the original exactly.
  const keyword::Query q = corpus.q1(0, true);
  const auto origin = original.ring().node_ids().front();
  auto names = [](const std::vector<DataElement>& es) {
    std::vector<std::string> ns;
    for (const auto& e : es) ns.push_back(e.name);
    std::sort(ns.begin(), ns.end());
    return ns;
  };
  EXPECT_EQ(names(restored.query(q, origin).elements),
            names(original.query(q, origin).elements));
}

TEST(Snapshot, MixedTokenKindsSurvive) {
  Rng rng(152);
  SquidSystem original(mixed_space());
  original.build_network(10, rng);
  original.publish({"alpha", {std::string("word"), 123.5}});
  original.publish({"beta", {std::string("term"), 0.25}});

  std::stringstream snapshot;
  save_snapshot(original, snapshot);
  SquidSystem restored(mixed_space());
  load_snapshot(restored, snapshot);

  const auto result = restored.query(restored.space().parse("(word, 123-124)"),
                                     restored.ring().node_ids().front());
  ASSERT_EQ(result.stats.matches, 1u);
  EXPECT_EQ(result.elements[0].name, "alpha");
  EXPECT_DOUBLE_EQ(std::get<double>(result.elements[0].keys[1]), 123.5);
}

TEST(Snapshot, NamesWithSpacesAndPunctuationSurvive) {
  Rng rng(153);
  SquidSystem original(doc_space());
  original.build_network(5, rng);
  original.publish({"my file (v2): final.pdf",
                    {std::string("grid"), std::string("data")}});
  std::stringstream snapshot;
  save_snapshot(original, snapshot);
  SquidSystem restored(doc_space());
  load_snapshot(restored, snapshot);
  const auto result = restored.query(restored.space().parse("(grid, data)"),
                                     restored.ring().node_ids().front());
  ASSERT_EQ(result.stats.matches, 1u);
  EXPECT_EQ(result.elements[0].name, "my file (v2): final.pdf");
}

TEST(Snapshot, GeometryMismatchRejected) {
  Rng rng(154);
  SquidSystem original(doc_space());
  original.build_network(5, rng);
  std::stringstream snapshot;
  save_snapshot(original, snapshot);

  SquidConfig zconfig;
  zconfig.curve = "zorder";
  SquidSystem wrong_curve(doc_space(), zconfig);
  EXPECT_THROW(load_snapshot(wrong_curve, snapshot), std::invalid_argument);
}

TEST(Snapshot, RequiresAFreshSystem) {
  Rng rng(155);
  SquidSystem original(doc_space());
  original.build_network(5, rng);
  std::stringstream snapshot;
  save_snapshot(original, snapshot);

  SquidSystem busy(doc_space());
  busy.build_network(3, rng);
  EXPECT_THROW(load_snapshot(busy, snapshot), std::invalid_argument);
}

TEST(Snapshot, GarbageRejected) {
  SquidSystem sys(doc_space());
  std::stringstream garbage("not a snapshot at all");
  EXPECT_THROW(load_snapshot(sys, garbage), std::invalid_argument);
}

} // namespace
} // namespace squid::core
