// Interleaved async queries (DESIGN.md 4e): N queries in flight on ONE
// shared engine clock must produce exactly the results and stats of N
// sequential synchronous query() calls. Queries share no mutable state
// (the owner cache is off here — overlapping cached queries are refused by
// the ScopedCacheWriter guard), so interleaving their message deliveries
// is pure scheduling and must be invisible to every per-query answer.
// Also in the sanitizer sweep (-L sanitize): the async path must stay
// clean under TSan even though completion is engine-driven.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "squid/core/system.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/obs/trace.hpp"
#include "squid/sim/engine.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

struct World {
  SquidSystem sys;
  std::vector<keyword::Query> queries;
  std::vector<overlay::NodeId> origins;
};

World make_world(bool traced) {
  SquidConfig config;
  config.trace_queries = traced;
  const char letters[] = "abcde";
  World world{SquidSystem(keyword::KeywordSpace(
                              {keyword::StringCodec(letters, 3),
                               keyword::StringCodec(letters, 3)}),
                          std::move(config)),
              {},
              {}};
  Rng rng(0xa57c);
  world.sys.build_network(40, rng);
  for (int i = 0; i < 500; ++i) {
    std::string a, b;
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      a.push_back(letters[rng.below(5)]);
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      b.push_back(letters[rng.below(5)]);
    world.sys.publish(DataElement{"e" + std::to_string(i), {a, b}});
  }
  for (const char* text :
       {"a*, *", "*, b*", "ab, cd", "c*, d*", "*, *", "b*, a*", "de, *",
        "*, ce", "aa*, *", "*, bb*"}) {
    world.queries.push_back(world.sys.space().parse(text));
    world.origins.push_back(world.sys.ring().random_node(rng));
  }
  return world;
}

std::vector<std::string> sorted_names(const QueryResult& r) {
  std::vector<std::string> names;
  for (const auto& e : r.elements) names.push_back(e.name);
  std::sort(names.begin(), names.end());
  return names;
}

void expect_same_answer(const QueryResult& async_r, const QueryResult& sync_r,
                        const std::string& context) {
  // Interleaving may reorder scan arrivals between queries, so compare the
  // element *set*; every aggregate must be bit-equal.
  EXPECT_EQ(sorted_names(async_r), sorted_names(sync_r)) << context;
  EXPECT_EQ(async_r.complete, sync_r.complete) << context;
  EXPECT_EQ(async_r.stats.matches, sync_r.stats.matches) << context;
  EXPECT_EQ(async_r.stats.routing_nodes, sync_r.stats.routing_nodes)
      << context;
  EXPECT_EQ(async_r.stats.processing_nodes, sync_r.stats.processing_nodes)
      << context;
  EXPECT_EQ(async_r.stats.data_nodes, sync_r.stats.data_nodes) << context;
  EXPECT_EQ(async_r.stats.messages, sync_r.stats.messages) << context;
  EXPECT_EQ(async_r.stats.critical_path_hops,
            sync_r.stats.critical_path_hops)
      << context;
  EXPECT_EQ(async_r.stats.retries, sync_r.stats.retries) << context;
  EXPECT_EQ(async_r.stats.failed_clusters, sync_r.stats.failed_clusters)
      << context;
}

TEST(InterleavedQueries, ConcurrentInFlightEqualsSequentialSync) {
  World world = make_world(/*traced=*/false);

  std::vector<QueryResult> sync_results;
  for (std::size_t i = 0; i < world.queries.size(); ++i)
    sync_results.push_back(world.sys.query(world.queries[i], world.origins[i]));

  sim::Engine engine;
  std::vector<QueryHandle> handles;
  for (std::size_t i = 0; i < world.queries.size(); ++i)
    handles.push_back(
        world.sys.query_async(world.queries[i], world.origins[i], engine));
  for (const QueryHandle& h : handles) {
    ASSERT_TRUE(h.valid());
    EXPECT_FALSE(h.ready()); // nothing delivers until the engine runs
  }
  engine.run();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    ASSERT_TRUE(handles[i].ready()) << "query " << i;
    expect_same_answer(handles[i].result(), sync_results[i],
                       "query " + std::to_string(i));
  }
}

TEST(InterleavedQueries, StaggeredLaunchesKeepEveryAnswerIdentical) {
  World world = make_world(/*traced=*/false);

  std::vector<QueryResult> sync_results;
  for (std::size_t i = 0; i < world.queries.size(); ++i)
    sync_results.push_back(world.sys.query(world.queries[i], world.origins[i]));

  // Launch query i at virtual time 3*i from inside the engine itself, so
  // later launches overlap earlier queries mid-flight.
  sim::Engine engine;
  std::vector<QueryHandle> handles(world.queries.size());
  for (std::size_t i = 0; i < world.queries.size(); ++i) {
    engine.schedule(3 * i, [&world, &engine, &handles, i] {
      handles[i] =
          world.sys.query_async(world.queries[i], world.origins[i], engine);
    });
  }
  engine.run();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    ASSERT_TRUE(handles[i].ready()) << "query " << i;
    expect_same_answer(handles[i].result(), sync_results[i],
                       "staggered query " + std::to_string(i));
    EXPECT_EQ(handles[i].started_at(), 3 * i);
  }
}

TEST(InterleavedQueries, CompletionTimeIsTheCriticalPath) {
  World world = make_world(/*traced=*/false);
  sim::Engine engine;
  std::vector<QueryHandle> handles;
  for (std::size_t i = 0; i < world.queries.size(); ++i)
    handles.push_back(
        world.sys.query_async(world.queries[i], world.origins[i], engine));
  engine.run();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    ASSERT_TRUE(handles[i].ready());
    const QueryResult& r = handles[i].result();
    // Fault-free, the deepest timing event always delivers a message, so a
    // query's virtual completion time IS its critical path.
    EXPECT_EQ(handles[i].completed_at() - handles[i].started_at(),
              r.stats.critical_path_hops)
        << "query " << i;
  }
}

TEST(InterleavedQueries, AsyncQueriesCarryTracesToo) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  World world = make_world(/*traced=*/true);
  sim::Engine engine;
  std::vector<QueryHandle> handles;
  for (std::size_t i = 0; i < world.queries.size(); ++i)
    handles.push_back(
        world.sys.query_async(world.queries[i], world.origins[i], engine));
  engine.run();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    ASSERT_TRUE(handles[i].ready());
    const QueryResult& r = handles[i].result();
    ASSERT_NE(r.trace, nullptr) << "query " << i;
    const QueryStats derived = obs::derive_stats(*r.trace);
    EXPECT_EQ(derived.messages, r.stats.messages) << "query " << i;
    EXPECT_EQ(derived.matches, r.stats.matches) << "query " << i;
    EXPECT_EQ(derived.critical_path_hops, r.stats.critical_path_hops)
        << "query " << i;
  }
}

TEST(InterleavedQueries, ResultsBeforeTheEngineRunsAreRefused) {
  World world = make_world(/*traced=*/false);
  sim::Engine engine;
  QueryHandle handle =
      world.sys.query_async(world.queries[0], world.origins[0], engine);
  EXPECT_TRUE(handle.valid());
  EXPECT_FALSE(handle.ready());
  EXPECT_THROW(handle.result(), std::invalid_argument);
  EXPECT_THROW(handle.completed_at(), std::invalid_argument);
  engine.run();
  EXPECT_TRUE(handle.ready());
  EXPECT_NO_THROW(handle.result());

  QueryHandle empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.ready());
  EXPECT_THROW(empty.started_at(), std::invalid_argument);
}

} // namespace
} // namespace squid::core
