// Differential lock for the tiered mutable key plane (DESIGN.md 4j): any
// interleaving of publishes and retracts — direct calls or routed update
// frames, in every delivery mode, with faults off or on — must leave a
// store that is query-bit-identical to a from-scratch publish_batch build
// of the surviving elements. The matrix sweeps curve family, finger base,
// aggregation, and owner caching so the equivalence is pinned across every
// query-plane configuration, not just the paper default.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "squid/core/system.hpp"
#include "squid/core/update.hpp"
#include "squid/sim/fault.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

using overlay::NodeId;

const char kLetters[] = "abcde";

keyword::KeywordSpace two_dim_space() {
  return keyword::KeywordSpace(
      {keyword::StringCodec(kLetters, 3), keyword::StringCodec(kLetters, 3)});
}

DataElement random_element(Rng& rng, int serial) {
  std::string a, b;
  for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
    a.push_back(kLetters[rng.below(5)]);
  for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
    b.push_back(kLetters[rng.below(5)]);
  return DataElement{"e" + std::to_string(serial), {a, b}};
}

/// One query-plane configuration plus the update-plane delivery point it
/// exercises. Together the nine rows cover all three curve families, finger
/// bases {2, 4, 8, 16}, aggregation and caching on/off, all three delivery
/// modes, shard counts {1, 2, 4}, and faults off/on.
struct MatrixPoint {
  const char* curve;
  unsigned finger_base;
  bool aggregate;
  bool cache;
  DeliveryMode mode;
  unsigned shards;
  bool faults;
};

const MatrixPoint kMatrix[] = {
    {"hilbert", 2, true, false, DeliveryMode::kLockstep, 1, false},
    {"hilbert", 2, false, false, DeliveryMode::kVirtualTime, 1, false},
    {"hilbert", 2, true, true, DeliveryMode::kParallel, 2, false},
    {"hilbert", 8, true, false, DeliveryMode::kParallel, 4, false},
    {"hilbert", 8, true, true, DeliveryMode::kLockstep, 1, true},
    {"zorder", 2, true, false, DeliveryMode::kVirtualTime, 1, true},
    {"zorder", 4, false, true, DeliveryMode::kParallel, 2, true},
    {"gray", 2, true, false, DeliveryMode::kParallel, 1, true},
    {"gray", 16, true, true, DeliveryMode::kParallel, 4, true},
};

SquidConfig config_of(const MatrixPoint& p) {
  SquidConfig config;
  config.curve = p.curve;
  config.finger_base = p.finger_base;
  config.aggregate_subclusters = p.aggregate;
  config.cache_cluster_owners = p.cache;
  return config;
}

/// Assert the two systems expose bit-identical stores and answer queries
/// identically from the same origins.
void expect_twin_equal(SquidSystem& lhs, SquidSystem& rhs, Rng& origins) {
  ASSERT_EQ(lhs.key_count(), rhs.key_count());
  ASSERT_EQ(lhs.element_count(), rhs.element_count());
  ASSERT_EQ(lhs.key_indices(), rhs.key_indices());
  std::vector<std::vector<DataElement>> mine;
  lhs.for_each_key([&](u128, const sfc::Point&,
                       const std::vector<DataElement>& es) {
    mine.push_back(es);
  });
  std::size_t at = 0;
  rhs.for_each_key([&](u128, const sfc::Point&,
                       const std::vector<DataElement>& es) {
    ASSERT_LT(at, mine.size());
    EXPECT_EQ(es, mine[at]); // element identity AND arrival order
    ++at;
  });
  EXPECT_EQ(at, mine.size());

  for (const char* text : {"(*, *)", "(a*, *)", "(*, b*)", "(c*, d*)"}) {
    const keyword::Query q = lhs.space().parse(text);
    const NodeId origin = lhs.ring().random_node(origins);
    const QueryResult rl = lhs.query(q, origin);
    const QueryResult rr = rhs.query(q, origin);
    EXPECT_EQ(rl.elements, rr.elements) << text;
    EXPECT_EQ(rl.stats.matches, rr.stats.matches) << text;
    EXPECT_EQ(lhs.count(q, origin), rhs.count(q, origin)) << text;
  }
}

TEST(StoreDifferential, InterleavingsMatchFromScratchBatchBuild) {
  // Direct publish/unpublish interleavings on the tiered store, one system
  // per matrix row. The survivors, batch-loaded into a fresh twin, must
  // reproduce the store and its query answers exactly.
  for (const MatrixPoint& p : kMatrix) {
    SCOPED_TRACE(std::string(p.curve) + "/b" + std::to_string(p.finger_base));
    Rng rng(0xd1ff);
    SquidSystem sys(two_dim_space(), config_of(p));
    Rng net(77);
    sys.build_network(20, net);

    std::vector<DataElement> live; // arrival order of survivors
    for (int step = 0; step < 400; ++step) {
      if (!live.empty() && rng.below(3) == 0) {
        const std::size_t pick = rng.below(live.size());
        ASSERT_TRUE(sys.unpublish(live[pick]));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        const DataElement e = random_element(rng, step);
        sys.publish(e);
        live.push_back(e);
      }
    }

    SquidSystem twin(two_dim_space(), config_of(p));
    Rng twin_net(77);
    twin.build_network(20, twin_net);
    twin.publish_batch(live);

    Rng origins(0x0409);
    expect_twin_equal(sys, twin, origins);
  }
}

TEST(StoreDifferential, UpdatePlaneMatchesBatchBuildAcrossMatrix) {
  // The same lock through the routed update plane: per-row delivery mode,
  // shard count, and fault switch. The oracle follows each op's `applied`
  // verdict, so with faults on the twin holds exactly the delivered subset.
  sim::FaultPlan plan;
  plan.seed = 0xfa11;
  plan.drop_probability = 0.08;
  plan.delay_probability = 0.1;
  plan.duplicate_probability = 0.05;

  for (const MatrixPoint& p : kMatrix) {
    SCOPED_TRACE(std::string(p.curve) + "/b" + std::to_string(p.finger_base) +
                 "/S" + std::to_string(p.shards) +
                 (p.faults ? "/faults" : "/clean"));
    Rng rng(0x09d3);
    SquidSystem sys(two_dim_space(), config_of(p));
    Rng net(31);
    sys.build_network(24, net);

    UpdateOptions opts;
    opts.mode = p.mode;
    opts.shards = p.shards;
    opts.faults = p.faults ? &plan : nullptr;

    std::vector<DataElement> live; // applied survivors, arrival order
    int serial = 0;
    for (int chunk = 0; chunk < 5; ++chunk) {
      std::vector<UpdateOp> ops;
      std::vector<DataElement> chunk_live = live;
      for (int i = 0; i < 60; ++i) {
        const NodeId origin = sys.ring().random_node(rng);
        if (!chunk_live.empty() && rng.below(3) == 0) {
          // Retract a survivor not already retracted this chunk, so every
          // delivered retract is applied and the oracle stays exact.
          const std::size_t pick = rng.below(chunk_live.size());
          ops.push_back(UpdateOp::retract(chunk_live[pick], origin));
          chunk_live.erase(chunk_live.begin() +
                           static_cast<std::ptrdiff_t>(pick));
        } else {
          ops.push_back(UpdateOp::publish(random_element(rng, serial++),
                                          origin));
        }
      }
      const UpdateRun run = apply_updates(sys, ops, opts);
      ASSERT_EQ(run.results.size(), ops.size());
      if (!p.faults) {
        EXPECT_EQ(run.lost, 0u);
        EXPECT_EQ(run.delivered, ops.size());
      }
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const UpdateResult& r = run.results[i];
        if (!r.applied) continue;
        if (ops[i].kind == UpdateOp::Kind::kPublish) {
          live.push_back(ops[i].element);
        } else {
          const auto it = std::find(live.begin(), live.end(), ops[i].element);
          ASSERT_NE(it, live.end());
          live.erase(it);
        }
      }
    }
    ASSERT_EQ(sys.element_count(), live.size());

    SquidSystem twin(two_dim_space(), config_of(p));
    Rng twin_net(31);
    twin.build_network(24, twin_net);
    twin.publish_batch(live);

    Rng origins(0x0419);
    expect_twin_equal(sys, twin, origins);
  }
}

TEST(StoreDifferential, DeliveryModeNeverChangesFinalState) {
  // One op stream, five delivery points: identical per-op wire verdicts and
  // identical final stores. Only completion times may differ (clause 3 of
  // the determinism contract in core/update.hpp).
  struct Point {
    DeliveryMode mode;
    unsigned shards;
  };
  const Point points[] = {{DeliveryMode::kLockstep, 1},
                          {DeliveryMode::kVirtualTime, 1},
                          {DeliveryMode::kParallel, 1},
                          {DeliveryMode::kParallel, 2},
                          {DeliveryMode::kParallel, 4}};
  // Heavy drop rate: with send_retries=3 a loss needs four straight drops,
  // so 0.5 yields a real lost population (~6% of ops) for the equality
  // check below.
  sim::FaultPlan plan;
  plan.seed = 0x5eed;
  plan.drop_probability = 0.5;
  plan.duplicate_probability = 0.05;

  for (const bool faulty : {false, true}) {
    SCOPED_TRACE(faulty ? "faults" : "clean");
    // Build the shared op stream once, against a throwaway system (for
    // origin draws only — the stream must be identical for every mode).
    std::vector<UpdateOp> ops;
    {
      Rng rng(0xabcd);
      SquidSystem probe(two_dim_space());
      Rng net(13);
      probe.build_network(16, net);
      std::vector<DataElement> pool;
      for (int i = 0; i < 150; ++i) {
        const NodeId origin = probe.ring().random_node(rng);
        if (!pool.empty() && rng.below(4) == 0) {
          const std::size_t pick = rng.below(pool.size());
          ops.push_back(UpdateOp::retract(pool[pick], origin));
          pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
        } else {
          const DataElement e = random_element(rng, i);
          ops.push_back(UpdateOp::publish(e, origin));
          pool.push_back(e);
        }
      }
    }

    std::vector<UpdateRun> runs;
    std::vector<std::vector<u128>> key_sets;
    std::vector<std::size_t> element_counts;
    for (const Point& pt : points) {
      SquidSystem sys(two_dim_space());
      Rng net(13);
      sys.build_network(16, net);
      UpdateOptions opts;
      opts.mode = pt.mode;
      opts.shards = pt.shards;
      opts.faults = faulty ? &plan : nullptr;
      runs.push_back(apply_updates(sys, ops, opts));
      key_sets.push_back(sys.key_indices());
      element_counts.push_back(sys.element_count());
    }
    for (std::size_t m = 1; m < runs.size(); ++m) {
      EXPECT_EQ(key_sets[m], key_sets[0]);
      EXPECT_EQ(element_counts[m], element_counts[0]);
      EXPECT_EQ(runs[m].delivered, runs[0].delivered);
      EXPECT_EQ(runs[m].applied, runs[0].applied);
      EXPECT_EQ(runs[m].lost, runs[0].lost);
      EXPECT_EQ(runs[m].messages, runs[0].messages);
      EXPECT_EQ(runs[m].retries, runs[0].retries);
      EXPECT_EQ(runs[m].bytes, runs[0].bytes);
      ASSERT_EQ(runs[m].results.size(), runs[0].results.size());
      for (std::size_t i = 0; i < runs[0].results.size(); ++i) {
        EXPECT_EQ(runs[m].results[i].delivered, runs[0].results[i].delivered);
        EXPECT_EQ(runs[m].results[i].applied, runs[0].results[i].applied);
        EXPECT_EQ(runs[m].results[i].hops, runs[0].results[i].hops);
        EXPECT_EQ(runs[m].results[i].messages, runs[0].results[i].messages);
        EXPECT_EQ(runs[m].results[i].bytes, runs[0].results[i].bytes);
      }
    }
    if (faulty) {
      EXPECT_GT(runs[0].lost, 0u); // the plan actually bit
    }
  }
}

TEST(StoreDifferential, SingleOpConveniencesRoundTrip) {
  Rng rng(0x51);
  SquidSystem sys(two_dim_space());
  sys.build_network(12, rng);
  const DataElement e = random_element(rng, 0);
  const NodeId origin = sys.ring().random_node(rng);

  const UpdateResult pub = publish_update(sys, e, origin);
  EXPECT_TRUE(pub.delivered);
  EXPECT_TRUE(pub.applied);
  EXPECT_GT(pub.bytes, 0u);
  EXPECT_EQ(sys.element_count(), 1u);

  const UpdateResult ret = retract_update(sys, e, origin);
  EXPECT_TRUE(ret.delivered);
  EXPECT_TRUE(ret.applied);
  EXPECT_EQ(sys.element_count(), 0u);

  // Retracting again is delivered (the frame routes) but not applied.
  const UpdateResult miss = retract_update(sys, e, origin);
  EXPECT_TRUE(miss.delivered);
  EXPECT_FALSE(miss.applied);
}

TEST(StoreDifferential, TieredAndFlatCapsAnswerIdentically) {
  // store_delta_cap 1 degenerates to the PR-2 flat store (merge on every
  // mutation); the default sqrt policy must be observationally identical.
  Rng rng(0x7157);
  SquidConfig tiered_cfg; // store_delta_cap = 0 (sqrt policy)
  SquidConfig flat_cfg;
  flat_cfg.store_delta_cap = 1;
  SquidSystem tiered(two_dim_space(), tiered_cfg);
  SquidSystem flat(two_dim_space(), flat_cfg);
  Rng net_a(5), net_b(5);
  tiered.build_network(18, net_a);
  flat.build_network(18, net_b);

  std::vector<DataElement> live;
  for (int step = 0; step < 500; ++step) {
    if (!live.empty() && rng.below(3) == 0) {
      const std::size_t pick = rng.below(live.size());
      ASSERT_TRUE(tiered.unpublish(live[pick]));
      ASSERT_TRUE(flat.unpublish(live[pick]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const DataElement e = random_element(rng, step);
      tiered.publish(e);
      flat.publish(e);
      live.push_back(e);
    }
    if (step % 100 == 0) {
      ASSERT_EQ(tiered.key_indices(), flat.key_indices());
    }
  }
  EXPECT_EQ(flat.store_delta_size(), 0u); // cap 1 never leaves residue
  EXPECT_GT(tiered.store_stats().merges, 0u);
  Rng origins(0x0429);
  expect_twin_equal(tiered, flat, origins);
}

} // namespace
} // namespace squid::core
