// Replication and durability: keys live on their owner chain, failures
// erode copies, repair restores them, and keys die only when every copy is
// gone before repair runs.

#include <gtest/gtest.h>

#include "squid/core/replication.hpp"
#include "squid/workload/corpus.hpp"

namespace squid::core {
namespace {

struct World {
  std::unique_ptr<workload::KeywordCorpus> corpus;
  std::unique_ptr<SquidSystem> sys;
};

World make_world(std::uint64_t seed, std::size_t nodes, std::size_t elements) {
  World world;
  Rng rng(seed);
  world.corpus = std::make_unique<workload::KeywordCorpus>(2, 300, 0.9, rng);
  world.sys = std::make_unique<SquidSystem>(world.corpus->make_space());
  world.sys->build_network(nodes, rng);
  for (const auto& e : world.corpus->make_elements(elements, rng))
    world.sys->publish(e);
  return world;
}

TEST(Replication, InitialPlacementPutsFactorCopiesOnOwnerChain) {
  World world = make_world(91, 50, 1000);
  ReplicationManager replication(*world.sys, 3);
  EXPECT_EQ(replication.tracked_keys(), world.sys->key_count());
  EXPECT_EQ(replication.total_copies(), 3 * world.sys->key_count());
  EXPECT_EQ(replication.lost_keys(), 0u);
  EXPECT_EQ(replication.under_replicated(), 0u);
}

TEST(Replication, FactorCappedByRingSize) {
  World world = make_world(92, 2, 50);
  ReplicationManager replication(*world.sys, 5);
  EXPECT_EQ(replication.total_copies(), 2 * world.sys->key_count());
}

TEST(Replication, SingleFailureLosesNothingAtFactorTwo) {
  World world = make_world(93, 60, 1500);
  ReplicationManager replication(*world.sys, 2);
  // Fail the most loaded node so copies are certainly dropped (under the
  // skewed corpus a random node often holds nothing).
  SquidSystem::NodeId heaviest = 0;
  std::size_t heaviest_load = 0;
  for (const auto& [id, load] : world.sys->node_loads()) {
    if (load >= heaviest_load) {
      heaviest = id;
      heaviest_load = load;
    }
  }
  ASSERT_GT(heaviest_load, 0u);
  replication.fail_node(heaviest);
  EXPECT_EQ(replication.lost_keys(), 0u);
  EXPECT_GT(replication.under_replicated(), 0u);
  const std::size_t transferred = replication.repair();
  EXPECT_GT(transferred, 0u);
  EXPECT_EQ(replication.under_replicated(), 0u);
}

TEST(Replication, UnreplicatedDataDiesWithItsNode) {
  World world = make_world(94, 40, 1000);
  ReplicationManager replication(*world.sys, 1);
  Rng rng(94);
  // Find a node holding at least one key and kill it.
  for (const auto& [id, load] : world.sys->node_loads()) {
    if (load > 0) {
      replication.fail_node(id);
      break;
    }
  }
  EXPECT_GT(replication.lost_keys(), 0u);
  // Repair cannot resurrect lost keys.
  (void)replication.repair();
  EXPECT_GT(replication.lost_keys(), 0u);
}

TEST(Replication, RepairBetweenFailuresPreservesEverything) {
  World world = make_world(95, 80, 2000);
  ReplicationManager replication(*world.sys, 3);
  Rng rng(95);
  for (int wave = 0; wave < 10; ++wave) {
    replication.fail_node(world.sys->ring().random_node(rng));
    (void)replication.repair(); // repair outpaces failures
  }
  EXPECT_EQ(replication.lost_keys(), 0u);
  EXPECT_EQ(replication.under_replicated(), 0u);
}

TEST(Replication, MassSimultaneousFailureLosesDataAtLowFactor) {
  World world = make_world(96, 100, 2000);
  ReplicationManager low(*world.sys, 1);
  Rng rng(96);
  // Kill 30% before any repair.
  for (int i = 0; i < 30; ++i)
    low.fail_node(world.sys->ring().random_node(rng));
  EXPECT_GT(low.lost_keys(), 0u);
}

TEST(Replication, HigherFactorSurvivesMassFailure) {
  // Same failure pattern, factor 4: adjacent-successor copies make
  // simultaneous loss of all four copies vanishingly unlikely at 20%.
  World world = make_world(97, 100, 2000);
  ReplicationManager replication(*world.sys, 4);
  Rng rng(97);
  for (int i = 0; i < 20; ++i)
    replication.fail_node(world.sys->ring().random_node(rng));
  EXPECT_EQ(replication.lost_keys(), 0u);
}

TEST(Replication, GracefulLeaveHandsOffCopies) {
  World world = make_world(98, 50, 1500);
  ReplicationManager replication(*world.sys, 1);
  Rng rng(98);
  for (int i = 0; i < 20; ++i)
    replication.leave_node(world.sys->ring().random_node(rng));
  EXPECT_EQ(replication.lost_keys(), 0u);
}

TEST(Replication, JoinSyncsTheNewcomersRanges) {
  World world = make_world(99, 40, 1000);
  ReplicationManager replication(*world.sys, 2);
  Rng rng(99);
  for (int i = 0; i < 20; ++i) (void)replication.join_node(rng);
  (void)replication.repair();
  EXPECT_EQ(replication.lost_keys(), 0u);
  EXPECT_EQ(replication.under_replicated(), 0u);
  // Every key's copies sit exactly on its current owner chain.
  EXPECT_EQ(replication.total_copies(), 2 * world.sys->key_count());
}

TEST(Replication, AutoRepairReReplicatesImmediatelyAfterACrash) {
  World world = make_world(101, 60, 1500);
  ReplicationManager replication(*world.sys, 3);
  replication.set_auto_repair(true);
  Rng rng(101);
  // Reactive maintenance closes each crash's replication hole on the spot:
  // no window ever opens for a second failure to finish a key off.
  for (int wave = 0; wave < 15; ++wave) {
    replication.fail_node(world.sys->ring().random_node(rng));
    EXPECT_EQ(replication.under_replicated(), 0u);
  }
  EXPECT_EQ(replication.lost_keys(), 0u);
  // The periodic sweep finds nothing left to do (only stale-copy GC).
  EXPECT_EQ(replication.repair(), 0u);
}

TEST(Replication, AutoRepairOffLeavesTheBacklogForPeriodicRepair) {
  World world = make_world(102, 60, 1500);
  ReplicationManager replication(*world.sys, 3);
  ASSERT_FALSE(replication.auto_repair());
  Rng rng(102);
  for (int wave = 0; wave < 5; ++wave)
    replication.fail_node(world.sys->ring().random_node(rng));
  EXPECT_GT(replication.under_replicated(), 0u);
  EXPECT_GT(replication.repair(), 0u);
  EXPECT_EQ(replication.under_replicated(), 0u);
}

TEST(Replication, RejectsZeroFactor) {
  World world = make_world(100, 10, 50);
  EXPECT_THROW(ReplicationManager(*world.sys, 0), std::invalid_argument);
}

} // namespace
} // namespace squid::core
