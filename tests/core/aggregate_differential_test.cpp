// The aggregation-pushdown bit-identicality lock (DESIGN.md 4g).
//
// query_aggregate folds matching elements into partials at the scan sites
// and merges them up the cluster-dispatch tree. The contract under test:
// the finished aggregate must be BIT-EQUAL to the origin folding the
// ship-all element answer itself — for every aggregate kind, in every
// delivery mode (kLockstep / kVirtualTime / kParallel at every shard
// count), faults off AND on. Because every merge operator is associative
// and commutative (ExactSum superaccumulator for kSum, bounded sorted
// lists for top-k and group-by), no mode, shard interleaving, or arrival
// order may change a single bit — including the kSum double.
//
// The reply-path accounting rides the same lock: bytes_shipped and
// reply_messages are sums of per-site/per-edge measured terms, so all
// three modes must report identical values.
//
// Shard counts honor SQUID_PARALLEL_SHARDS like the parallel suite.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "squid/core/aggregate.hpp"
#include "squid/core/parallel.hpp"
#include "squid/core/system.hpp"
#include "squid/sim/fault.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

using Config = std::tuple<std::string, unsigned, bool, bool>;
// curve, finger_base, aggregate_subclusters, cache

class AggregateDifferential : public ::testing::TestWithParam<Config> {};

std::vector<unsigned> shard_counts() {
  const char* env = std::getenv("SQUID_PARALLEL_SHARDS");
  if (env == nullptr || *env == '\0') return {1, 2, 4};
  std::vector<unsigned> out;
  unsigned current = 0;
  bool any = false;
  for (const char* p = env;; ++p) {
    if (*p >= '0' && *p <= '9') {
      current = current * 10 + static_cast<unsigned>(*p - '0');
      any = true;
    } else {
      if (any && current > 0) out.push_back(current);
      current = 0;
      any = false;
      if (*p == '\0') break;
    }
  }
  return out.empty() ? std::vector<unsigned>{1, 2, 4} : out;
}

struct TwinWorld {
  std::unique_ptr<SquidSystem> live; ///< runs the aggregate pushdown
  std::unique_ptr<SquidSystem> ref;  ///< runs ship-all element queries
};

/// String keyword dim + numeric attribute dim: the numeric kinds (sum, min,
/// max, top-k) need a NumericCodec payload to aggregate over.
TwinWorld make_world(const Config& param) {
  const auto& [curve, finger_base, aggregate, cache] = param;
  SquidConfig config;
  config.curve = curve;
  config.finger_base = finger_base;
  config.aggregate_subclusters = aggregate;
  config.cache_cluster_owners = cache;

  const char letters[] = "abcde";
  const keyword::KeywordSpace space(
      {keyword::StringCodec(letters, 3),
       keyword::NumericCodec(0.0, 64.0, 6)});
  TwinWorld world;
  world.live = std::make_unique<SquidSystem>(space, config);
  world.ref = std::make_unique<SquidSystem>(space, config);

  Rng rng_a(0xa66 ^ finger_base), rng_b(0xa66 ^ finger_base);
  world.live->build_network(35, rng_a);
  world.ref->build_network(35, rng_b);

  Rng rng(0xf01d);
  for (int i = 0; i < 400; ++i) {
    std::string word;
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      word.push_back(letters[rng.below(5)]);
    // Values off the bucket grid, with deliberate collisions (below(96)/1.5)
    // so top-k exercises its name tie-break through the real system.
    const double value = static_cast<double>(rng.below(96)) / 1.5;
    const DataElement e{"e" + std::to_string(i), {word, value}};
    world.live->publish(e);
    world.ref->publish(e);
  }
  return world;
}

keyword::Query random_query(Rng& rng) {
  const char letters[] = "abcde";
  keyword::Query q;
  const auto kind = rng.below(3);
  if (kind == 0) {
    q.terms.push_back(keyword::Any{});
  } else {
    std::string w;
    for (std::uint64_t j = rng.range(1, 2); j-- > 0;)
      w.push_back(letters[rng.below(5)]);
    if (kind == 1) {
      q.terms.push_back(keyword::Whole{w});
    } else {
      q.terms.push_back(keyword::Prefix{w});
    }
  }
  const double lo = static_cast<double>(rng.below(48));
  q.terms.push_back(keyword::NumRange{lo, lo + static_cast<double>(
                                              rng.range(4, 32))});
  return q;
}

std::vector<AggregateSpec> all_specs() {
  std::vector<AggregateSpec> specs;
  AggregateSpec s;
  s.kind = AggregateKind::kCount;
  specs.push_back(s);
  s.kind = AggregateKind::kSum;
  s.dim = 1;
  specs.push_back(s);
  s.kind = AggregateKind::kMin;
  specs.push_back(s);
  s.kind = AggregateKind::kGroupBy;
  s.dim = 0;
  specs.push_back(s);
  s.kind = AggregateKind::kTopK;
  s.dim = 1;
  s.k = 5;
  s.largest = true;
  specs.push_back(s);
  return specs;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// The oracle: origin-side flat fold over the ship-all element answer, in
/// the order the elements arrived.
AggregatePartial origin_fold(const QueryResult& ref,
                             const AggregateSpec& spec) {
  AggregatePartial flat = make_partial(spec);
  for (const DataElement& e : ref.elements) flat.fold(e);
  return flat;
}

void expect_partial_equal(const AggregatePartial& got,
                          const AggregatePartial& want,
                          const std::string& context) {
  ASSERT_EQ(got.spec, want.spec) << context;
  EXPECT_EQ(got, want) << context; // every field, incl. ExactSum limbs
  // Belt and braces on the floating-point surfaces: identical bits, not
  // just operator== (which would accept -0.0 == 0.0).
  EXPECT_EQ(double_bits(got.sum.value()), double_bits(want.sum.value()))
      << context;
  if (got.has_extremes && want.has_extremes) {
    EXPECT_EQ(double_bits(got.min), double_bits(want.min)) << context;
    EXPECT_EQ(double_bits(got.max), double_bits(want.max)) << context;
  }
}

void expect_same_aggregate_run(const QueryResult& a, const QueryResult& b,
                               const std::string& context) {
  ASSERT_NE(a.aggregate, nullptr) << context;
  ASSERT_NE(b.aggregate, nullptr) << context;
  expect_partial_equal(*a.aggregate, *b.aggregate, context);
  EXPECT_EQ(a.complete, b.complete) << context;
  EXPECT_EQ(a.stats.messages, b.stats.messages) << context;
  EXPECT_EQ(a.stats.matches, b.stats.matches) << context;
  EXPECT_EQ(a.stats.bytes_shipped, b.stats.bytes_shipped) << context;
  EXPECT_EQ(a.stats.reply_messages, b.stats.reply_messages) << context;
  EXPECT_EQ(a.stats.processing_nodes, b.stats.processing_nodes) << context;
  EXPECT_EQ(a.stats.critical_path_hops, b.stats.critical_path_hops) << context;
}

TEST_P(AggregateDifferential, PushdownEqualsOriginFoldInEveryMode) {
  // Two twin worlds (four identical systems): one pair compares ship-all
  // elements against lockstep pushdown, the extra .live replays the SAME
  // query sequence under kVirtualTime. Each system sees one query per k in
  // the same order, so the owner cache (when on) evolves identically
  // everywhere — planning stays comparable across modes.
  TwinWorld world = make_world(GetParam());
  TwinWorld async_world = make_world(GetParam());
  Rng rng(0x51de);
  const std::vector<AggregateSpec> specs = all_specs();

  std::uint64_t total_matches = 0;
  std::vector<ParallelQuerySpec> batch;
  std::vector<QueryResult> lockstep;
  for (std::size_t k = 0; k < 25; ++k) {
    const keyword::Query query = random_query(rng);
    const overlay::NodeId origin = world.live->ring().random_node(rng);
    const AggregateSpec& spec = specs[k % specs.size()];
    const std::string context = "query " + std::to_string(k) + " " +
                                aggregate_kind_name(spec.kind);

    const QueryResult ref = world.ref->query(query, origin);
    total_matches += ref.elements.size();
    QueryResult agg = world.live->query_aggregate(query, spec, origin);
    ASSERT_NE(agg.aggregate, nullptr) << context;
    expect_partial_equal(*agg.aggregate, origin_fold(ref, spec), context);
    EXPECT_EQ(agg.complete, ref.complete) << context;
    // The pushdown is additive: planning — and therefore the request-side
    // message count — is untouched by the aggregate spec.
    EXPECT_EQ(agg.stats.messages, ref.stats.messages) << context;
    EXPECT_EQ(agg.stats.matches, ref.elements.size()) << context;

    // kVirtualTime: the same query on a caller-owned engine.
    sim::Engine engine(0);
    QueryHandle handle =
        async_world.live->query_aggregate_async(query, spec, origin, engine);
    while (engine.step()) {
    }
    ASSERT_TRUE(handle.ready()) << context;
    expect_same_aggregate_run(handle.result(), agg, context + " async");

    ParallelQuerySpec p;
    p.query = query;
    p.origin = origin;
    p.aggregate = spec;
    batch.push_back(std::move(p));
    lockstep.push_back(std::move(agg));
  }
  ASSERT_GT(total_matches, 0u) << "degenerate corpus: no query matched";
  for (unsigned shards : shard_counts()) {
    ParallelOptions opts;
    opts.shards = shards;
    TwinWorld fresh = make_world(GetParam()); // cache-neutral twin
    const ParallelRun run = fresh.live->query_parallel(batch, opts);
    ASSERT_EQ(run.results.size(), lockstep.size());
    for (std::size_t i = 0; i < run.results.size(); ++i) {
      expect_same_aggregate_run(run.results[i], lockstep[i],
                                "S=" + std::to_string(shards) + " item " +
                                    std::to_string(i));
    }
  }
}

TEST_P(AggregateDifferential, PushdownEqualsOriginFoldUnderFaults) {
  sim::FaultPlan plan;
  plan.seed = 0xfa57;
  plan.drop_probability = 0.06;
  plan.delay_probability = 0.15;
  plan.max_delay = 3;
  plan.duplicate_probability = 0.08;

  TwinWorld world = make_world(GetParam());
  Rng rng(0xfade);
  const std::vector<AggregateSpec> specs = all_specs();

  std::vector<ParallelQuerySpec> batch;
  std::vector<QueryResult> lockstep;
  bool any_incomplete = false;
  for (std::size_t k = 0; k < 15; ++k) {
    const keyword::Query query = random_query(rng);
    const overlay::NodeId origin = world.live->ring().random_node(rng);
    const AggregateSpec& spec = specs[k % specs.size()];
    // Same fork for the oracle and the aggregate run: identical planning
    // consumes identical fault draws, so both see the same scans — the
    // aggregate over a PARTIAL answer still equals the origin fold over the
    // same partial element answer.
    sim::FaultInjector ref_injector(sim::fork_plan(plan, k));
    world.ref->set_fault_injector(&ref_injector);
    const QueryResult ref = world.ref->query(query, origin);
    world.ref->set_fault_injector(nullptr);

    sim::FaultInjector live_injector(sim::fork_plan(plan, k));
    world.live->set_fault_injector(&live_injector);
    QueryResult agg = world.live->query_aggregate(query, spec, origin);
    world.live->set_fault_injector(nullptr);

    const std::string context = "faulted " + std::to_string(k) + " " +
                                aggregate_kind_name(spec.kind);
    ASSERT_NE(agg.aggregate, nullptr) << context;
    expect_partial_equal(*agg.aggregate, origin_fold(ref, spec), context);
    EXPECT_EQ(agg.complete, ref.complete) << context;
    EXPECT_EQ(agg.stats.retries, ref.stats.retries) << context;
    EXPECT_EQ(agg.stats.failed_clusters, ref.stats.failed_clusters) << context;
    EXPECT_EQ(live_injector.rng_draws(), ref_injector.rng_draws()) << context;
    any_incomplete |= !agg.complete;

    ParallelQuerySpec p;
    p.query = query;
    p.origin = origin;
    p.aggregate = spec;
    batch.push_back(std::move(p));
    lockstep.push_back(std::move(agg));
  }
  (void)any_incomplete; // plan probabilities make losses likely, not certain

  for (unsigned shards : shard_counts()) {
    ParallelOptions opts;
    opts.shards = shards;
    opts.faults = &plan;
    TwinWorld fresh = make_world(GetParam());
    const ParallelRun run = fresh.live->query_parallel(batch, opts);
    ASSERT_EQ(run.results.size(), lockstep.size());
    for (std::size_t i = 0; i < run.results.size(); ++i) {
      expect_same_aggregate_run(run.results[i], lockstep[i],
                                "S=" + std::to_string(shards) + " faulted " +
                                    std::to_string(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AggregateDifferential,
    ::testing::Values(Config{"hilbert", 2, true, false},
                      Config{"hilbert", 2, false, false},
                      Config{"hilbert", 2, true, true},
                      Config{"hilbert", 8, true, false},
                      Config{"hilbert", 8, true, true},
                      Config{"zorder", 2, true, false},
                      Config{"zorder", 4, false, true},
                      Config{"gray", 2, true, false},
                      Config{"gray", 16, true, true}),
    [](const auto& info) {
      return std::get<0>(info.param) + "_b" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_agg" : "_noagg") +
             (std::get<3>(info.param) ? "_cache" : "_nocache");
    });

// --- Convenience wrappers & spec validation ---------------------------------

TEST(AggregateApiTest, WrappersAgreeWithTheOracle) {
  TwinWorld world = make_world(Config{"hilbert", 2, true, false});
  Rng rng(0xca11);
  const keyword::Query q = world.live->space().parse("(*, 0-64)");
  const overlay::NodeId origin = world.live->ring().random_node(rng);
  const QueryResult ref = world.ref->query(q, origin);
  ASSERT_FALSE(ref.elements.empty());

  EXPECT_EQ(world.live->query_count(q, origin), ref.elements.size());

  ExactSum expect_sum;
  double expect_min = 0, expect_max = 0;
  bool first = true;
  for (const DataElement& e : ref.elements) {
    const double v = std::get<double>(e.keys[1]);
    expect_sum.add(v);
    if (first || v < expect_min) expect_min = v;
    if (first || v > expect_max) expect_max = v;
    first = false;
  }
  EXPECT_EQ(double_bits(world.live->query_sum(q, 1, origin)),
            double_bits(expect_sum.value()));

  const auto [min, max] = world.live->query_min_max(q, 1, origin);
  ASSERT_TRUE(min.has_value());
  ASSERT_TRUE(max.has_value());
  EXPECT_EQ(double_bits(*min), double_bits(expect_min));
  EXPECT_EQ(double_bits(*max), double_bits(expect_max));

  const std::vector<GroupCount> groups = world.live->query_group_by(q, 0, origin);
  std::uint64_t grouped = 0;
  for (const GroupCount& g : groups) grouped += g.count;
  EXPECT_EQ(grouped, ref.elements.size());

  const std::vector<TopEntry> top = world.live->query_top_k(q, 1, 3, origin);
  ASSERT_EQ(top.size(), std::min<std::size_t>(3, ref.elements.size()));
  EXPECT_GE(top.front().value, top.back().value);
}

TEST(AggregateApiTest, EmptyMatchYieldsEmptyExtremes) {
  TwinWorld world = make_world(Config{"hilbert", 2, true, false});
  Rng rng(0x3a);
  // Keyword "eee" paired with an impossible-to-miss range still matches
  // nothing if no element carries that exact keyword… use a range below
  // every published value instead: values are >= 0, query [0, 0) is empty.
  keyword::Query q;
  q.terms.push_back(keyword::Whole{"eee"});
  q.terms.push_back(keyword::NumRange{63.9, 64.0});
  const overlay::NodeId origin = world.live->ring().random_node(rng);
  const QueryResult ref = world.ref->query(q, origin);
  if (!ref.elements.empty()) GTEST_SKIP() << "corpus happens to match";
  const auto [min, max] = world.live->query_min_max(q, 1, origin);
  EXPECT_FALSE(min.has_value());
  EXPECT_FALSE(max.has_value());
  EXPECT_EQ(world.live->query_count(q, origin), 0u);
}

TEST(AggregateApiTest, InvalidSpecsFailLoudly) {
  TwinWorld world = make_world(Config{"hilbert", 2, true, false});
  Rng rng(0xbad);
  const keyword::Query q = world.live->space().parse("(*, *)");
  const overlay::NodeId origin = world.live->ring().random_node(rng);

  AggregateSpec spec; // kind == kNone
  EXPECT_THROW(world.live->query_aggregate(q, spec, origin),
               std::invalid_argument);
  spec.kind = AggregateKind::kCount;
  spec.dim = 7; // out of range
  EXPECT_THROW(world.live->query_aggregate(q, spec, origin),
               std::invalid_argument);
  spec.kind = AggregateKind::kSum;
  spec.dim = 0; // string dimension: no numeric payload
  EXPECT_THROW(world.live->query_aggregate(q, spec, origin),
               std::invalid_argument);
  spec.kind = AggregateKind::kTopK;
  spec.dim = 1;
  spec.k = 0;
  EXPECT_THROW(world.live->query_aggregate(q, spec, origin),
               std::invalid_argument);
}

} // namespace
} // namespace squid::core
