// Grand integration: one system driven through its entire lifecycle —
// balanced build, queries, snapshot, restore, churn with replication,
// runtime balancing — asserting the core guarantees at every stage.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "squid/core/replication.hpp"
#include "squid/core/serialize.hpp"
#include "squid/core/system.hpp"
#include "squid/core/timing.hpp"
#include "squid/workload/corpus.hpp"

namespace squid {
namespace {

using core::DataElement;
using core::SquidSystem;

std::vector<std::string> names_of(const std::vector<DataElement>& es) {
  std::vector<std::string> names;
  for (const auto& e : es) names.push_back(e.name);
  std::sort(names.begin(), names.end());
  return names;
}

TEST(FullStack, LifecyclePreservesEveryGuarantee) {
  Rng rng(2003);
  workload::KeywordCorpus corpus(2, 400, 0.9, rng);
  core::SquidConfig config;
  config.join_samples = 8;
  SquidSystem sys(corpus.make_space(), config);

  // Stage 1: balanced build — publish first, grow through LB joins.
  auto elements = corpus.make_elements(4000, rng);
  for (const auto& e : elements) sys.publish(e);
  sys.build_network(1, rng);
  for (int i = 1; i < 150; ++i) (void)sys.join_node(rng);
  for (int s = 0; s < 10; ++s) (void)sys.runtime_balance_sweep(1.3);
  sys.repair_routing();
  ASSERT_TRUE(sys.ring().ring_consistent());

  // Stage 2: completeness on the balanced system.
  const keyword::Query probe = corpus.q1(0, true);
  std::vector<std::string> expected;
  for (const auto& e : elements)
    if (sys.space().matches(probe, e.keys)) expected.push_back(e.name);
  std::sort(expected.begin(), expected.end());
  const auto first = sys.query(probe, sys.ring().random_node(rng));
  ASSERT_EQ(names_of(first.elements), expected);
  EXPECT_EQ(sys.count(probe, sys.ring().random_node(rng)), expected.size());

  // Stage 3: timing DAG is structurally valid and consistent with stats.
  ASSERT_GE(first.timing.size(), 1u);
  EXPECT_EQ(first.timing[0].parent, -1);
  for (std::size_t i = 1; i < first.timing.size(); ++i) {
    ASSERT_GE(first.timing[i].parent, 0);
    ASSERT_LT(static_cast<std::size_t>(first.timing[i].parent), i);
  }
  // Each post-root event corresponds to at least one message.
  EXPECT_LE(first.timing.size() - 1, first.stats.messages);
  Rng timing_rng(1);
  const auto est = core::estimate_latency_ms(first, core::LinkModel{10, 0, 0},
                                             timing_rng, 3);
  EXPECT_DOUBLE_EQ(
      est.max(), 10.0 * static_cast<double>(first.stats.critical_path_hops));

  // Stage 4: snapshot round trip preserves behavior bit-for-bit.
  std::stringstream snapshot;
  core::save_snapshot(sys, snapshot);
  SquidSystem restored(corpus.make_space(), config);
  core::load_snapshot(restored, snapshot);
  const auto origin = sys.ring().node_ids().front();
  EXPECT_EQ(names_of(restored.query(probe, origin).elements), expected);

  // Stage 5: churn with replication — three waves of ~7% failures with a
  // repair round between waves (repair must outpace failure for factor 3
  // to guarantee durability; a single 20% simultaneous wipe can kill an
  // entire 3-chain, as the durability bench quantifies).
  core::ReplicationManager replication(restored, 3);
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i)
      replication.fail_node(restored.ring().random_node(rng));
    for (int i = 0; i < 10; ++i) (void)replication.join_node(rng);
    (void)replication.repair();
  }
  EXPECT_EQ(replication.lost_keys(), 0u);
  restored.stabilize(rng, 3);

  // Stage 6: still complete after all of it.
  const auto final_result =
      restored.query(probe, restored.ring().random_node(rng));
  EXPECT_EQ(names_of(final_result.elements), expected);
  // And still bounded: a fraction of peers processed the query.
  EXPECT_LT(final_result.stats.processing_nodes,
            restored.ring().size() / 2);
}

TEST(FullStack, JoinCostIsLogarithmic) {
  // Paper 3.2: "The cost for joining is O(log N) messages." Measure the
  // routed part of protocol-faithful joins across a decade of scale.
  Rng rng(2004);
  const auto mean_join_hops = [&rng](std::size_t n) {
    overlay::ChordRing ring(48);
    ring.build(n, rng);
    double total = 0;
    constexpr int kJoins = 40;
    for (int i = 0; i < kJoins; ++i) {
      const auto r = ring.join(ring.random_free_id(rng), ring.random_node(rng));
      total += static_cast<double>(r.hops());
    }
    return total / kJoins;
  };
  const double at_500 = mean_join_hops(500);
  const double at_5000 = mean_join_hops(5000);
  // 10x the nodes must cost far less than 10x the hops (log growth).
  EXPECT_LT(at_5000, at_500 + 4.0);
  EXPECT_LT(at_5000, 2.5 * at_500);
}

} // namespace
} // namespace squid
