// FaultPlan / FaultInjector contracts (docs/FAULT_MODEL.md): seeded replay
// determinism, the empty-plan zero-draw guarantee, partition semantics, and
// the sim-engine property that message delivery order is a pure function of
// (seed, FaultPlan) — including drop and duplicate edges.

#include "squid/sim/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "squid/sim/engine.hpp"

namespace squid::sim {
namespace {

TEST(FaultPlan, EmptyPlanInjectsNothingAndDrawsNothing) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  FaultInjector injector(plan);
  for (int i = 0; i < 200; ++i) {
    const auto verdict = injector.decide(7, 13);
    EXPECT_TRUE(verdict.delivered);
    EXPECT_EQ(verdict.extra_delay, 0u);
    EXPECT_FALSE(verdict.duplicate);
  }
  EXPECT_EQ(injector.rng_draws(), 0u);
  EXPECT_EQ(injector.dropped(), 0u);
  EXPECT_EQ(injector.delayed(), 0u);
  EXPECT_EQ(injector.duplicated(), 0u);
}

TEST(FaultPlan, RejectsInvalidProbabilitiesAndWindows) {
  FaultPlan bad;
  bad.drop_probability = 1.5;
  EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
  bad = {};
  bad.duplicate_probability = -0.1;
  EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
  bad = {};
  bad.partitions.push_back({20, 10, 0});
  EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
}

TEST(FaultPlan, SameSeedReplaysTheSameFaultSequence) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_probability = 0.2;
  plan.delay_probability = 0.3;
  plan.max_delay = 6;
  plan.duplicate_probability = 0.1;

  const auto replay = [&plan] {
    FaultInjector injector(plan);
    std::vector<std::uint64_t> verdicts;
    for (overlay::NodeId i = 0; i < 500; ++i) {
      const auto v = injector.decide(i, i + 1);
      verdicts.push_back((v.delivered ? 1u : 0u) | (v.duplicate ? 2u : 0u) |
                         (v.extra_delay << 2));
    }
    return verdicts;
  };
  const auto first = replay();
  EXPECT_EQ(first, replay());

  // A different seed must diverge (2^-500-ish odds otherwise).
  FaultPlan other = plan;
  other.seed = 100;
  FaultInjector injector(other);
  std::vector<std::uint64_t> verdicts;
  for (overlay::NodeId i = 0; i < 500; ++i) {
    const auto v = injector.decide(i, i + 1);
    verdicts.push_back((v.delivered ? 1u : 0u) | (v.duplicate ? 2u : 0u) |
                       (v.extra_delay << 2));
  }
  EXPECT_NE(first, verdicts);
}

TEST(FaultPlan, PartitionSeparatesSidesOnlyDuringItsWindow) {
  FaultPlan plan;
  plan.partitions.push_back({10, 20, 1000});
  FaultInjector injector(plan);

  injector.set_now(5); // before the window
  EXPECT_FALSE(injector.partitioned(1, 2000));
  injector.set_now(10); // window is [start, end)
  EXPECT_TRUE(injector.partitioned(1, 2000));
  EXPECT_TRUE(injector.partitioned(2000, 1));
  EXPECT_FALSE(injector.partitioned(1, 999));    // same side (< pivot)
  EXPECT_FALSE(injector.partitioned(1000, 2000)); // same side (>= pivot)
  injector.set_now(20); // past the window
  EXPECT_FALSE(injector.partitioned(1, 2000));

  // Cross-partition drops are deterministic: no randomness consumed.
  injector.set_now(15);
  const auto verdict = injector.decide(1, 2000);
  EXPECT_FALSE(verdict.delivered);
  EXPECT_EQ(injector.partition_drops(), 1u);
  EXPECT_EQ(injector.rng_draws(), 0u);
}

TEST(FaultPlan, ScheduleEventsFiresWavesAtPlanTimes) {
  FaultPlan plan;
  plan.events.push_back({10, /*crash=*/true, 3});
  plan.events.push_back({25, /*crash=*/false, 2});
  FaultInjector injector(plan);
  Engine engine;
  std::vector<std::pair<Time, bool>> fired;
  injector.schedule_events(engine, [&](const FaultPlan::NodeEvent& e) {
    fired.emplace_back(engine.now(), e.crash);
  });
  engine.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], (std::pair<Time, bool>{10, true}));
  EXPECT_EQ(fired[1], (std::pair<Time, bool>{25, false}));
}

TEST(FaultPlan, TimeoutReportsQueueUntilDrained) {
  FaultInjector injector(FaultPlan{});
  injector.report_timeout(3, 7);
  injector.report_timeout(4, 7);
  EXPECT_EQ(injector.pending_timeout_reports(), 2u);
  const auto reports = injector.take_timeout_reports();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0], (std::pair<overlay::NodeId, overlay::NodeId>{3, 7}));
  EXPECT_EQ(reports[1], (std::pair<overlay::NodeId, overlay::NodeId>{4, 7}));
  EXPECT_EQ(injector.pending_timeout_reports(), 0u);
}

/// Run a fixed batch of sends through an engine under `plan`; the returned
/// arrival log (message id, arrival tick) is the observable delivery order.
std::vector<std::pair<int, Time>> delivery_log(const FaultPlan& plan) {
  FaultInjector injector(plan);
  Engine engine;
  engine.set_fault_injector(&injector);
  std::vector<std::pair<int, Time>> log;
  for (int i = 0; i < 300; ++i) {
    const auto from = static_cast<overlay::NodeId>(i);
    const auto to = static_cast<overlay::NodeId>(i + 1);
    engine.send(1 + static_cast<Time>(i % 7), from, to,
                [&log, &engine, i] { log.emplace_back(i, engine.now()); });
  }
  engine.run();
  return log;
}

// Satellite: delivery order is a deterministic function of (seed, plan),
// with drops (absent entries) and duplicates (doubled entries) included.
TEST(EngineFaultProperty, DeliveryOrderIsAFunctionOfSeedAndPlan) {
  FaultPlan plan;
  plan.seed = 2003;
  plan.drop_probability = 0.15;
  plan.delay_probability = 0.3;
  plan.max_delay = 5;
  plan.duplicate_probability = 0.15;

  const auto first = delivery_log(plan);
  const auto second = delivery_log(plan);
  EXPECT_EQ(first, second);

  // The run visibly exercised every edge: some messages vanished, some
  // arrived twice.
  EXPECT_LT(first.size(), 300u * 2);
  std::vector<bool> seen(300, false);
  std::vector<bool> twice(300, false);
  for (const auto& [id, at] : first) {
    twice[static_cast<std::size_t>(id)] =
        seen[static_cast<std::size_t>(id)] || twice[static_cast<std::size_t>(id)];
    seen[static_cast<std::size_t>(id)] = true;
  }
  EXPECT_TRUE(std::find(seen.begin(), seen.end(), false) != seen.end());
  EXPECT_TRUE(std::find(twice.begin(), twice.end(), true) != twice.end());

  // A different seed reorders the world.
  FaultPlan other = plan;
  other.seed = 2004;
  EXPECT_NE(first, delivery_log(other));
}

TEST(EngineFaultProperty, CertainDropNeverArrivesCertainDuplicateArrivesTwice) {
  FaultPlan drop_all;
  drop_all.drop_probability = 1.0;
  FaultInjector dropper(drop_all);
  Engine engine;
  engine.set_fault_injector(&dropper);
  int arrivals = 0;
  EXPECT_FALSE(engine.send(1, 0, 1, [&] { ++arrivals; }));
  engine.run();
  EXPECT_EQ(arrivals, 0);
  EXPECT_EQ(dropper.dropped(), 1u);

  FaultPlan dup_all;
  dup_all.duplicate_probability = 1.0;
  FaultInjector duper(dup_all);
  Engine engine2;
  engine2.set_fault_injector(&duper);
  EXPECT_TRUE(engine2.send(1, 0, 1, [&] { ++arrivals; }));
  engine2.run();
  EXPECT_EQ(arrivals, 2);
  EXPECT_EQ(duper.duplicated(), 1u);
}

TEST(EngineFaultProperty, RunKeepsInjectorClockAligned) {
  FaultPlan plan;
  plan.partitions.push_back({5, 15, 500});
  FaultInjector injector(plan);
  Engine engine;
  engine.set_fault_injector(&injector);
  int arrived = 0;
  // At t=6 the partition is live: a cross-pivot send must be dropped using
  // the engine-advanced clock, not the injector's initial 0.
  engine.schedule(6, [&] {
    EXPECT_EQ(injector.now(), 6u);
    EXPECT_FALSE(engine.send(1, 1, 1000, [&] { ++arrived; }));
  });
  engine.schedule(20, [&] {
    EXPECT_TRUE(engine.send(1, 1, 1000, [&] { ++arrived; }));
  });
  engine.run();
  EXPECT_EQ(arrived, 1);
  EXPECT_EQ(injector.partition_drops(), 1u);
}

} // namespace
} // namespace squid::sim
