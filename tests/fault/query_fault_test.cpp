// Query-engine behavior under injected faults (docs/FAULT_MODEL.md):
// retry/backoff accounting, partial-result reporting, trace/derive_stats
// consistency on the fault path, failure detection through timeout reports,
// and recall recovering once faults clear and routing is repaired.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "squid/core/system.hpp"
#include "squid/obs/metrics.hpp" // defines the SQUID_OBS_ENABLED default
#include "squid/obs/trace.hpp"
#include "squid/sim/fault.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

struct Corpus {
  SquidSystem sys;
  std::vector<DataElement> all;
};

Corpus make_corpus(std::uint64_t seed, SquidConfig config = {}) {
  Corpus corpus{
      SquidSystem(keyword::KeywordSpace({keyword::StringCodec("abcd", 3),
                                         keyword::StringCodec("abcd", 3)}),
                  std::move(config)),
      {}};
  Rng rng(seed);
  corpus.sys.build_network(48, rng);
  const char letters[] = "abcd";
  for (std::size_t i = 0; i < 600; ++i) {
    std::string a, b;
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      a.push_back(letters[rng.below(4)]);
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      b.push_back(letters[rng.below(4)]);
    corpus.all.push_back(DataElement{"doc" + std::to_string(i), {a, b}});
    corpus.sys.publish(corpus.all.back());
  }
  return corpus;
}

std::size_t oracle_matches(const Corpus& corpus, const keyword::Query& q) {
  std::size_t n = 0;
  for (const auto& e : corpus.all) n += corpus.sys.space().matches(q, e.keys);
  return n;
}

TEST(QueryFault, LossyNetworkYieldsPartialResultsWithHonestAccounting) {
  Corpus corpus = make_corpus(2003);
  sim::FaultPlan plan;
  plan.seed = 77;
  plan.drop_probability = 0.25;
  sim::FaultInjector injector(plan);
  corpus.sys.set_fault_injector(&injector);

  const keyword::Query q = corpus.sys.space().parse("a*, *");
  const std::size_t truth = oracle_matches(corpus, q);
  Rng pick(5);
  bool saw_incomplete = false;
  bool saw_retry = false;
  for (int round = 0; round < 12; ++round) {
    const QueryResult r =
        corpus.sys.query(q, corpus.sys.ring().random_node(pick));
    // Partial results are honest: completeness flag mirrors the abandoned
    // sub-query count, and a lossy run never invents elements.
    EXPECT_EQ(r.complete, r.stats.failed_clusters == 0);
    EXPECT_LE(r.stats.matches, truth);
    if (r.complete) EXPECT_EQ(r.stats.matches, truth);
    saw_incomplete |= !r.complete;
    saw_retry |= r.stats.retries > 0;
  }
  // With 25% loss and 3 retries per leg, both edges occur in 12 rounds.
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_incomplete);
  EXPECT_GT(injector.dropped(), 0u);
  // Exhausted legs raised suspicion for the maintenance pass to drain.
  EXPECT_GT(injector.pending_timeout_reports(), 0u);
}

TEST(QueryFault, ProcessTimeoutsDrainsReportsIntoRingRepair) {
  Corpus corpus = make_corpus(7);
  sim::FaultPlan plan;
  plan.seed = 13;
  plan.drop_probability = 0.35;
  sim::FaultInjector injector(plan);
  corpus.sys.set_fault_injector(&injector);

  const keyword::Query q = corpus.sys.space().parse("*, b*");
  Rng pick(3);
  for (int round = 0; round < 8; ++round)
    corpus.sys.query(q, corpus.sys.ring().random_node(pick));
  const std::size_t pending = injector.pending_timeout_reports();
  ASSERT_GT(pending, 0u);
  EXPECT_EQ(corpus.sys.process_timeouts(), pending);
  EXPECT_EQ(injector.pending_timeout_reports(), 0u);
  EXPECT_EQ(corpus.sys.process_timeouts(), 0u);

  // All suspicions here are false positives (nobody actually crashed), so
  // stabilization must re-converge the ring and queries must stay complete
  // once the network heals.
  corpus.sys.set_fault_injector(nullptr);
  Rng maint(11);
  corpus.sys.stabilize(maint, 4);
  EXPECT_TRUE(corpus.sys.ring().ring_consistent());
  const QueryResult healed =
      corpus.sys.query(q, corpus.sys.ring().random_node(pick));
  EXPECT_TRUE(healed.complete);
  EXPECT_EQ(healed.stats.matches, oracle_matches(corpus, q));
}

#if SQUID_OBS_ENABLED
TEST(QueryFault, TraceDerivedStatsMatchEngineStatsUnderFaults) {
  SquidConfig config;
  config.trace_queries = true;
  Corpus corpus = make_corpus(99, std::move(config));
  sim::FaultPlan plan;
  plan.seed = 31;
  plan.drop_probability = 0.2;
  plan.delay_probability = 0.3;
  plan.max_delay = 4;
  plan.duplicate_probability = 0.1;
  sim::FaultInjector injector(plan);
  corpus.sys.set_fault_injector(&injector);

  Rng pick(17);
  std::size_t faulted_queries = 0;
  for (const char* text : {"a*, *", "*, b*", "ab, *", "b*, c*"}) {
    const keyword::Query q = corpus.sys.space().parse(text);
    for (int round = 0; round < 4; ++round) {
      const QueryResult r =
          corpus.sys.query(q, corpus.sys.ring().random_node(pick));
      ASSERT_TRUE(r.trace);
      const QueryStats derived = obs::derive_stats(*r.trace);
      EXPECT_EQ(derived.messages, r.stats.messages);
      EXPECT_EQ(derived.matches, r.stats.matches);
      EXPECT_EQ(derived.retries, r.stats.retries);
      EXPECT_EQ(derived.failed_clusters, r.stats.failed_clusters);
      EXPECT_EQ(derived.routing_nodes, r.stats.routing_nodes);
      EXPECT_EQ(derived.processing_nodes, r.stats.processing_nodes);
      EXPECT_EQ(derived.data_nodes, r.stats.data_nodes);
      EXPECT_EQ(derived.critical_path_hops, r.stats.critical_path_hops);
      faulted_queries += r.stats.retries > 0 || r.stats.failed_clusters > 0;
    }
  }
  // The plan is aggressive enough that the fault path was actually taken.
  EXPECT_GT(faulted_queries, 0u);
}
#endif

TEST(QueryFault, BackoffPenaltiesLengthenTheCriticalPath) {
  Corpus bare = make_corpus(42);
  SquidConfig config; // defaults; same as bare
  Corpus faulted = make_corpus(42, std::move(config));
  sim::FaultPlan plan;
  plan.seed = 3;
  plan.drop_probability = 0.3;
  sim::FaultInjector injector(plan);
  faulted.sys.set_fault_injector(&injector);

  const keyword::Query q = bare.sys.space().parse("a*, b*");
  Rng pick_a(23), pick_b(23);
  std::size_t bare_total = 0, faulted_total = 0;
  for (int round = 0; round < 10; ++round) {
    const auto origin = bare.sys.ring().random_node(pick_a);
    ASSERT_EQ(origin, faulted.sys.ring().random_node(pick_b));
    bare_total += bare.sys.query(q, origin).stats.critical_path_hops;
    faulted_total += faulted.sys.query(q, origin).stats.critical_path_hops;
  }
  // Every resend waits out an exponential backoff on the critical path, so
  // aggregate latency under loss must strictly exceed the clean runs.
  EXPECT_GT(faulted_total, bare_total);
}

} // namespace
} // namespace squid::core
