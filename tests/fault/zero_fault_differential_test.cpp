// The zero-fault differential lock (docs/FAULT_MODEL.md): attaching a
// FaultInjector with an EMPTY plan must leave every query bit-identical to
// running with no injector at all — same elements, same stats, same timing
// DAG, same trace — and must consume zero randomness. This is what lets
// every experiment link against the fault layer unconditionally.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "squid/core/system.hpp"
#include "squid/obs/metrics.hpp" // defines the SQUID_OBS_ENABLED default
#include "squid/obs/trace.hpp"
#include "squid/sim/fault.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

struct Corpus {
  SquidSystem sys;
  std::vector<keyword::Query> queries;
};

Corpus make_corpus(std::uint64_t seed) {
  SquidConfig config;
  config.trace_queries = true;
  config.cache_cluster_owners = true;
  Corpus corpus{
      SquidSystem(keyword::KeywordSpace({keyword::StringCodec("abcd", 3),
                                         keyword::StringCodec("abcd", 3)}),
                  std::move(config)),
      {}};
  Rng rng(seed);
  corpus.sys.build_network(48, rng);
  const char letters[] = "abcd";
  for (std::size_t i = 0; i < 600; ++i) {
    std::string a, b;
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      a.push_back(letters[rng.below(4)]);
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      b.push_back(letters[rng.below(4)]);
    corpus.sys.publish(DataElement{"doc" + std::to_string(i), {a, b}});
  }
  for (const char* text : {"a*, b*", "ab, *", "b*, *", "abc, abc", "*, c*"})
    corpus.queries.push_back(corpus.sys.space().parse(text));
  return corpus;
}

std::vector<std::string> names_of(const QueryResult& r) {
  std::vector<std::string> names;
  for (const auto& e : r.elements) names.push_back(e.name);
  std::sort(names.begin(), names.end());
  return names;
}

void expect_identical(const QueryResult& bare, const QueryResult& faulted) {
  EXPECT_EQ(names_of(bare), names_of(faulted));
  EXPECT_EQ(bare.complete, faulted.complete);
  EXPECT_TRUE(faulted.complete);
  EXPECT_EQ(bare.stats.matches, faulted.stats.matches);
  EXPECT_EQ(bare.stats.messages, faulted.stats.messages);
  EXPECT_EQ(bare.stats.routing_nodes, faulted.stats.routing_nodes);
  EXPECT_EQ(bare.stats.processing_nodes, faulted.stats.processing_nodes);
  EXPECT_EQ(bare.stats.data_nodes, faulted.stats.data_nodes);
  EXPECT_EQ(bare.stats.critical_path_hops, faulted.stats.critical_path_hops);
  EXPECT_EQ(bare.stats.retries, faulted.stats.retries);
  EXPECT_EQ(faulted.stats.retries, 0u);
  EXPECT_EQ(bare.stats.failed_clusters, faulted.stats.failed_clusters);
  EXPECT_EQ(faulted.stats.failed_clusters, 0u);
  ASSERT_EQ(bare.timing.size(), faulted.timing.size());
  for (std::size_t i = 0; i < bare.timing.size(); ++i) {
    EXPECT_EQ(bare.timing[i].parent, faulted.timing[i].parent);
    EXPECT_EQ(bare.timing[i].hops, faulted.timing[i].hops);
  }
#if SQUID_OBS_ENABLED
  ASSERT_TRUE(bare.trace && faulted.trace);
  EXPECT_EQ(bare.trace->spans.size(), faulted.trace->spans.size());
  for (std::size_t i = 0; i < bare.trace->spans.size(); ++i) {
    const auto& a = bare.trace->spans[i];
    const auto& b = faulted.trace->spans[i];
    EXPECT_EQ(a.kind, b.kind) << "span " << i;
    EXPECT_EQ(a.node, b.node) << "span " << i;
    EXPECT_EQ(a.messages, b.messages) << "span " << i;
    EXPECT_EQ(a.start, b.start) << "span " << i;
    EXPECT_EQ(a.end, b.end) << "span " << i;
  }
#endif
}

TEST(ZeroFaultDifferential, EmptyPlanIsBitTransparentForQueries) {
  Corpus bare = make_corpus(0xfau);
  Corpus faulted = make_corpus(0xfau);
  sim::FaultInjector injector{sim::FaultPlan{}};
  faulted.sys.set_fault_injector(&injector);

  Rng pick_bare(7), pick_faulted(7);
  for (const auto& q : bare.queries) {
    const auto origin = bare.sys.ring().random_node(pick_bare);
    ASSERT_EQ(origin, faulted.sys.ring().random_node(pick_faulted));
    expect_identical(bare.sys.query(q, origin), faulted.sys.query(q, origin));
  }
  EXPECT_EQ(injector.rng_draws(), 0u);
  EXPECT_EQ(injector.pending_timeout_reports(), 0u);
  EXPECT_EQ(faulted.sys.process_timeouts(), 0u);
}

TEST(ZeroFaultDifferential, EmptyPlanIsBitTransparentForCentralizedQueries) {
  Corpus bare = make_corpus(0xcau);
  Corpus faulted = make_corpus(0xcau);
  sim::FaultInjector injector{sim::FaultPlan{}};
  faulted.sys.set_fault_injector(&injector);

  Rng pick_bare(9), pick_faulted(9);
  for (const auto& q : bare.queries) {
    const auto origin = bare.sys.ring().random_node(pick_bare);
    ASSERT_EQ(origin, faulted.sys.ring().random_node(pick_faulted));
    expect_identical(bare.sys.query_centralized(q, origin),
                     faulted.sys.query_centralized(q, origin));
  }
  EXPECT_EQ(injector.rng_draws(), 0u);
}

TEST(ZeroFaultDifferential, EmptyPlanLeavesCountQueriesIdentical) {
  Corpus bare = make_corpus(0x5eu);
  Corpus faulted = make_corpus(0x5eu);
  sim::FaultInjector injector{sim::FaultPlan{}};
  faulted.sys.set_fault_injector(&injector);

  Rng pick_bare(11), pick_faulted(11);
  for (const auto& q : bare.queries) {
    const auto origin = bare.sys.ring().random_node(pick_bare);
    ASSERT_EQ(origin, faulted.sys.ring().random_node(pick_faulted));
    EXPECT_EQ(bare.sys.count(q, origin), faulted.sys.count(q, origin));
  }
  EXPECT_EQ(injector.rng_draws(), 0u);
}

} // namespace
} // namespace squid::core
