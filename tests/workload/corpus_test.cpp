#include "squid/workload/corpus.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace squid::workload {
namespace {

TEST(Vocabulary, GeneratesDistinctLowercaseWords) {
  Rng rng(41);
  Vocabulary vocab(300, 0.9, rng);
  ASSERT_EQ(vocab.words().size(), 300u);
  std::set<std::string> seen;
  for (const auto& w : vocab.words()) {
    EXPECT_FALSE(w.empty());
    EXPECT_LE(w.size(), 10u);
    for (const char c : w) EXPECT_TRUE(c >= 'a' && c <= 'z') << w;
    EXPECT_TRUE(seen.insert(w).second) << "duplicate " << w;
  }
}

TEST(Vocabulary, SharesPrefixesLikeNaturalLanguage) {
  Rng rng(42);
  Vocabulary vocab(300, 0.9, rng);
  std::map<std::string, int> stems;
  for (const auto& w : vocab.words()) stems[w.substr(0, 3)]++;
  int clustered = 0;
  for (const auto& [stem, count] : stems) clustered += (count >= 3);
  // Syllable construction should give many 3+ member prefix clusters.
  EXPECT_GE(clustered, 10);
}

TEST(Vocabulary, ZipfSamplingFavorsLowRanks) {
  Rng rng(43);
  Vocabulary vocab(200, 1.0, rng);
  std::map<std::string, int> counts;
  for (int i = 0; i < 20000; ++i) counts[vocab.sample(rng)]++;
  int top = 0;
  for (std::size_t r = 0; r < 10; ++r) top += counts[vocab.by_rank(r)];
  EXPECT_GT(top, 20000 / 4); // top-10 of 200 carries > 25% of the mass
}

TEST(KeywordCorpus, ElementsFitTheirSpace) {
  Rng rng(44);
  KeywordCorpus corpus(3, 200, 0.8, rng);
  const auto space = corpus.make_space();
  EXPECT_EQ(space.dims(), 3u);
  for (const auto& e : corpus.make_elements(200, rng)) {
    EXPECT_EQ(e.keys.size(), 3u);
    EXPECT_NO_THROW((void)space.encode(e.keys));
  }
}

TEST(KeywordCorpus, ElementNamesAreUnique) {
  Rng rng(45);
  KeywordCorpus corpus(2, 100, 0.8, rng);
  std::set<std::string> names;
  for (const auto& e : corpus.make_elements(500, rng))
    EXPECT_TRUE(names.insert(e.name).second);
}

TEST(KeywordCorpus, QueryFamiliesHaveThePaperShapes) {
  Rng rng(46);
  KeywordCorpus corpus(3, 100, 0.8, rng);
  const auto q1 = corpus.q1(0, /*partial=*/true);
  ASSERT_EQ(q1.terms.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<keyword::Prefix>(q1.terms[0]));
  EXPECT_TRUE(std::holds_alternative<keyword::Any>(q1.terms[1]));
  EXPECT_TRUE(std::holds_alternative<keyword::Any>(q1.terms[2]));

  const auto q1w = corpus.q1(3, /*partial=*/false);
  EXPECT_EQ(std::get<keyword::Whole>(q1w.terms[0]).word,
            corpus.vocabulary().by_rank(3));

  const auto q2 = corpus.q2(1, 2, /*partial_b=*/false);
  EXPECT_TRUE(std::holds_alternative<keyword::Prefix>(q2.terms[0]));
  EXPECT_TRUE(std::holds_alternative<keyword::Whole>(q2.terms[1]));
  EXPECT_TRUE(std::holds_alternative<keyword::Any>(q2.terms[2]));
}

TEST(KeywordCorpus, QueriesAreReplayableAcrossInstances) {
  Rng rng_a(47), rng_b(47);
  KeywordCorpus a(2, 150, 0.9, rng_a), b(2, 150, 0.9, rng_b);
  EXPECT_EQ(a.vocabulary().words(), b.vocabulary().words());
  EXPECT_EQ(keyword::to_string(a.q1(5, true)),
            keyword::to_string(b.q1(5, true)));
}

TEST(ResourceCorpus, ElementsFitSpaceAndCluster) {
  Rng rng(48);
  ResourceCorpus corpus;
  const auto space = corpus.make_space();
  EXPECT_EQ(space.dims(), 3u);
  std::map<int, int> storage_tiers;
  for (const auto& e : corpus.make_elements(500, rng)) {
    ASSERT_EQ(e.keys.size(), 3u);
    EXPECT_NO_THROW((void)space.encode(e.keys));
    const double storage = std::get<double>(e.keys[0]);
    EXPECT_GE(storage, 0.0);
    EXPECT_LE(storage, 4096.0 * 1.1);
    storage_tiers[static_cast<int>(storage / 100)]++;
  }
  // Tiered generation: a few buckets dominate.
  int in_top3 = 0, rank = 0;
  std::vector<int> counts;
  for (const auto& [tier, count] : storage_tiers) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  for (const int c : counts) {
    if (rank++ < 3) in_top3 += c;
  }
  EXPECT_GT(in_top3, 150);
}

TEST(ResourceCorpus, RangeQueryHelpersMatchExpectedElements) {
  Rng rng(49);
  ResourceCorpus corpus;
  const auto space = corpus.make_space();
  const auto q = corpus.q3_all_ranges(200, 600, 0, 10000, 0, 1000);
  int matched = 0;
  for (const auto& e : corpus.make_elements(500, rng)) {
    const double storage = std::get<double>(e.keys[0]);
    const bool expect = storage >= 200 && storage <= 600;
    if (expect) ++matched;
    // Quantization can only blur at bucket edges; use interior values.
    if (storage > 210 && storage < 590) {
      EXPECT_TRUE(space.matches(q, e.keys)) << storage;
    }
    if (storage < 190 || storage > 610) {
      EXPECT_FALSE(space.matches(q, e.keys)) << storage;
    }
  }
  EXPECT_GT(matched, 0);
}

} // namespace
} // namespace squid::workload
