// Geo moving-objects workload (DESIGN.md 4j): the update-heavy family over
// a 2-d numeric space. Locks the ground-truth bookkeeping (a step's retract
// always matches the indexed element bit-for-bit), exact recall of bbox
// queries against the workload's truth after motion through the update
// plane, and k_nearest against a brute-force oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "squid/core/system.hpp"
#include "squid/core/update.hpp"
#include "squid/util/rng.hpp"
#include "squid/workload/geo.hpp"

namespace squid::workload {
namespace {

using core::SquidSystem;
using core::UpdateOp;
using overlay::NodeId;

GeoConfig small_world() {
  GeoConfig config;
  config.width = 256;
  config.height = 256;
  config.bits = 8;
  config.objects = 48;
  config.speed_min = 2;
  config.speed_max = 12;
  return config;
}

/// Brute-force k-nearest over the workload's ground truth.
std::vector<GeoNeighbor> brute_nearest(const GeoMovingObjectsWorkload& world,
                                       double x, double y, std::size_t k) {
  std::vector<GeoNeighbor> all;
  for (std::size_t i = 0; i < world.size(); ++i) {
    const auto& o = world.object(i);
    const double dx = o.x - x, dy = o.y - y;
    all.push_back({o.name, o.x, o.y, dx * dx + dy * dy});
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.dist2 != b.dist2 ? a.dist2 < b.dist2 : a.name < b.name;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(GeoWorkload, SpawnsInsideWorldWithNumericTokens) {
  Rng rng(0x93e0);
  const GeoConfig config = small_world();
  GeoMovingObjectsWorkload world(config, rng);
  ASSERT_EQ(world.size(), config.objects);
  std::set<std::string> names;
  for (std::size_t i = 0; i < world.size(); ++i) {
    const auto& o = world.object(i);
    EXPECT_GE(o.x, 0.0);
    EXPECT_LT(o.x, config.width);
    EXPECT_GE(o.y, 0.0);
    EXPECT_LT(o.y, config.height);
    names.insert(o.name);

    const core::DataElement e = world.element_of(i);
    EXPECT_EQ(e.name, o.name);
    ASSERT_EQ(e.keys.size(), 2u);
    const double* ex = std::get_if<double>(&e.keys[0]);
    const double* ey = std::get_if<double>(&e.keys[1]);
    ASSERT_NE(ex, nullptr);
    ASSERT_NE(ey, nullptr);
    EXPECT_EQ(*ex, o.x);
    EXPECT_EQ(*ey, o.y);
  }
  EXPECT_EQ(names.size(), world.size()); // names are unique
  EXPECT_EQ(world.elements().size(), world.size());
}

TEST(GeoWorkload, StepEmitsRetractOfIndexedElementThenPublish) {
  Rng rng(0x57e9);
  GeoMovingObjectsWorkload world(small_world(), rng);
  for (int round = 0; round < 50; ++round) {
    const std::size_t i = rng.below(world.size());
    const core::DataElement before = world.element_of(i);
    std::vector<UpdateOp> ops;
    world.step(i, /*origin=*/3, ops, rng);
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[0].kind, UpdateOp::Kind::kRetract);
    EXPECT_EQ(ops[0].element, before); // retract matches what was indexed
    EXPECT_EQ(ops[1].kind, UpdateOp::Kind::kPublish);
    EXPECT_EQ(ops[1].element, world.element_of(i)); // publish = new truth
    EXPECT_EQ(ops[0].origin, 3u);
    EXPECT_EQ(ops[1].origin, 3u);
    // Motion stays inside the world and actually advances the leg.
    const auto& o = world.object(i);
    EXPECT_GE(o.x, 0.0);
    EXPECT_LT(o.x, world.config().width);
    EXPECT_GE(o.y, 0.0);
    EXPECT_LT(o.y, world.config().height);
  }
}

TEST(GeoWorkload, InsideMatchesManualBoxCheck) {
  Rng rng(0x1b0c);
  GeoMovingObjectsWorkload world(small_world(), rng);
  for (int trial = 0; trial < 20; ++trial) {
    const double xlo = static_cast<double>(rng.below(200));
    const double ylo = static_cast<double>(rng.below(200));
    const double xhi = xlo + static_cast<double>(rng.range(5, 80));
    const double yhi = ylo + static_cast<double>(rng.range(5, 80));
    std::set<std::string> expected;
    for (std::size_t i = 0; i < world.size(); ++i) {
      const auto& o = world.object(i);
      if (o.x >= xlo && o.x <= xhi && o.y >= ylo && o.y <= yhi)
        expected.insert(o.name);
    }
    const auto got = world.inside(xlo, xhi, ylo, yhi);
    EXPECT_EQ(std::set<std::string>(got.begin(), got.end()), expected);
  }
}

TEST(GeoWorkload, MotionThroughUpdatePlaneKeepsRecallExact) {
  // Publish the spawn corpus, then run ticks of every object through
  // apply_updates. Commits are synchronous, so every bbox query must agree
  // with the workload's ground truth EXACTLY — recall and precision 1.0.
  // This is the end-to-end lock tying workload, update plane, tiered store,
  // and query engine together.
  Rng rng(0x6e00);
  GeoMovingObjectsWorkload world(small_world(), rng);
  SquidSystem sys(world.make_space());
  sys.build_network(20, rng);
  sys.publish_batch(world.elements());
  ASSERT_EQ(sys.element_count(), world.size());

  for (int tick = 0; tick < 4; ++tick) {
    std::vector<UpdateOp> ops;
    for (std::size_t i = 0; i < world.size(); ++i)
      world.step(i, sys.ring().random_node(rng), ops, rng);
    const auto run = core::apply_updates(sys, ops);
    ASSERT_EQ(run.lost, 0u);
    ASSERT_EQ(run.applied, ops.size());
    ASSERT_EQ(sys.element_count(), world.size());

    for (int probe = 0; probe < 6; ++probe) {
      const double xlo = static_cast<double>(rng.below(200));
      const double ylo = static_cast<double>(rng.below(200));
      const double xhi = xlo + static_cast<double>(rng.range(10, 56));
      const double yhi = ylo + static_cast<double>(rng.range(10, 56));
      const auto truth = world.inside(xlo, xhi, ylo, yhi);
      const auto result = sys.query(bbox_query(xlo, xhi, ylo, yhi),
                                    sys.ring().random_node(rng));
      // The box query is bucket-resolution, so it may return boundary
      // extras; filter by exact coordinates, then demand set equality.
      std::set<std::string> got;
      for (const auto& e : result.elements) {
        const double ex = std::get<double>(e.keys[0]);
        const double ey = std::get<double>(e.keys[1]);
        if (ex >= xlo && ex <= xhi && ey >= ylo && ey <= yhi)
          got.insert(e.name);
      }
      EXPECT_EQ(got, std::set<std::string>(truth.begin(), truth.end()));
    }
  }
}

TEST(GeoWorkload, KNearestMatchesBruteForceOracle) {
  Rng rng(0x4ea9);
  GeoMovingObjectsWorkload world(small_world(), rng);
  SquidSystem sys(world.make_space());
  sys.build_network(16, rng);
  sys.publish_batch(world.elements());

  for (int trial = 0; trial < 12; ++trial) {
    const double x = static_cast<double>(rng.below(256));
    const double y = static_cast<double>(rng.below(256));
    const std::size_t k = 1 + rng.below(8);
    const auto got =
        k_nearest(sys, world.config(), x, y, k, sys.ring().random_node(rng));
    const auto want = brute_nearest(world, x, y, k);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].name, want[i].name) << "trial " << trial << " k=" << k;
      EXPECT_DOUBLE_EQ(got[i].dist2, want[i].dist2);
    }
  }

  // k larger than the population returns everyone, still sorted.
  const auto everyone = k_nearest(sys, world.config(), 128, 128,
                                  world.size() + 10,
                                  sys.ring().random_node(rng));
  EXPECT_EQ(everyone.size(), world.size());
  EXPECT_TRUE(std::is_sorted(everyone.begin(), everyone.end(),
                             [](const auto& a, const auto& b) {
                               return a.dist2 < b.dist2 ||
                                      (a.dist2 == b.dist2 && a.name < b.name);
                             }));
}

} // namespace
} // namespace squid::workload
