#include "squid/workload/text.hpp"

#include <gtest/gtest.h>

namespace squid::workload {
namespace {

TEST(Tokenize, SplitsOnNonAlphabetic) {
  EXPECT_EQ(tokenize("Peer-to-Peer systems, 2003!"),
            (std::vector<std::string>{"peer", "to", "peer", "systems"}));
  EXPECT_EQ(tokenize(""), std::vector<std::string>{});
  EXPECT_EQ(tokenize("...!!..."), std::vector<std::string>{});
}

TEST(Tokenize, LowercasesEverything) {
  EXPECT_EQ(tokenize("HiLBerT CURVE"),
            (std::vector<std::string>{"hilbert", "curve"}));
}

TEST(Stopwords, CommonWordsFiltered) {
  EXPECT_TRUE(is_stopword("the"));
  EXPECT_TRUE(is_stopword("of"));
  EXPECT_FALSE(is_stopword("hilbert"));
  EXPECT_FALSE(is_stopword("grid"));
}

TEST(ExtractKeywords, FrequencyDominates) {
  const auto keywords = extract_keywords(
      "grid grid grid discovery discovery peer", 2);
  ASSERT_EQ(keywords.size(), 2u);
  EXPECT_EQ(keywords[0], "grid");
  EXPECT_EQ(keywords[1], "discovery");
}

TEST(ExtractKeywords, StopwordsAndShortTokensDropped) {
  const auto keywords =
      extract_keywords("the a of to x y discovery in systems", 5);
  EXPECT_EQ(keywords, (std::vector<std::string>{"discovery", "systems"}));
}

TEST(ExtractKeywords, TiesBreakTowardSpecificity) {
  // Same frequency: the longer (more specific) word wins.
  const auto keywords = extract_keywords("cat catalogue", 1);
  ASSERT_EQ(keywords.size(), 1u);
  EXPECT_EQ(keywords[0], "catalogue");
}

TEST(ExtractKeywords, ShortTextsYieldFewerKeywords) {
  EXPECT_EQ(extract_keywords("hello", 4),
            (std::vector<std::string>{"hello"}));
  EXPECT_TRUE(extract_keywords("", 4).empty());
}

TEST(ExtractKeywords, DeterministicOrder) {
  const std::string text =
      "decentralized information discovery in decentralized distributed "
      "systems with flexible information queries";
  EXPECT_EQ(extract_keywords(text, 3), extract_keywords(text, 3));
  const auto keywords = extract_keywords(text, 3);
  ASSERT_EQ(keywords.size(), 3u);
  EXPECT_EQ(keywords[0], "decentralized"); // 2 occurrences, longest
  EXPECT_EQ(keywords[1], "information");   // 2 occurrences
}

} // namespace
} // namespace squid::workload
