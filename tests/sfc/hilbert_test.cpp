// Hilbert-specific properties: continuity (unit steps along the curve) and
// superior locality/clustering versus Z-order — the reasons the paper picks
// Hilbert for its index space (3.1.1, Fig 2-3).

#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>

#include "squid/sfc/hilbert.hpp"
#include "squid/sfc/refine.hpp"
#include "squid/sfc/zorder.hpp"
#include "squid/util/rng.hpp"

namespace squid::sfc {
namespace {

using Geometry = std::tuple<unsigned, unsigned>; // dims, bits

class HilbertContinuity : public ::testing::TestWithParam<Geometry> {};

TEST_P(HilbertContinuity, ConsecutiveIndicesAreLatticeNeighbors) {
  const auto& [dims, bits] = GetParam();
  const HilbertCurve curve(dims, bits);
  Point prev = curve.point_of(0);
  for (u128 h = 1; h <= curve.max_index(); ++h) {
    const Point cur = curve.point_of(h);
    unsigned moved_axes = 0;
    std::uint64_t step = 0;
    for (unsigned i = 0; i < dims; ++i) {
      if (cur[i] != prev[i]) {
        ++moved_axes;
        step = cur[i] > prev[i] ? cur[i] - prev[i] : prev[i] - cur[i];
      }
    }
    ASSERT_EQ(moved_axes, 1u) << "at index " << lo64(h);
    ASSERT_EQ(step, 1u) << "at index " << lo64(h);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSpaces, HilbertContinuity,
                         ::testing::Values(Geometry{1, 5}, Geometry{2, 2},
                                           Geometry{2, 4}, Geometry{2, 6},
                                           Geometry{3, 2}, Geometry{3, 4},
                                           Geometry{4, 3}, Geometry{5, 2},
                                           Geometry{6, 2}),
                         [](const auto& info) {
                           return "d" + std::to_string(std::get<0>(info.param)) +
                                  "_m" + std::to_string(std::get<1>(info.param));
                         });

TEST(Hilbert, StartsAtOrigin) {
  // Skilling's construction anchors index 0 at the origin corner.
  for (unsigned d = 1; d <= 4; ++d) {
    const HilbertCurve curve(d, 3);
    EXPECT_EQ(curve.point_of(0), Point(d, 0));
  }
}

TEST(Hilbert, OneDimensionalCurveIsIdentity) {
  const HilbertCurve curve(1, 8);
  for (std::uint64_t v = 0; v < 256; ++v) {
    EXPECT_EQ(curve.index_of({v}), static_cast<u128>(v));
  }
}

TEST(Hilbert, BetterNeighborLocalityThanZOrder) {
  // Locality metric: the fraction of lattice-neighbor pairs that sit within
  // a small window of each other on the curve. (The *mean* index distance is
  // dominated by each curve's few long jumps and does not separate the
  // families; what queries care about is how often neighbors stay close,
  // which is also what drives the cluster counts of Fig 3.)
  const unsigned bits = 6; // 64 x 64
  const HilbertCurve hilbert(2, bits);
  const ZOrderCurve zorder(2, bits);
  const std::uint64_t side = 1u << bits;
  // Window 1 = curve adjacency: Hilbert's continuity makes every one of its
  // 2^(2m)-1 consecutive index pairs a lattice-neighbor pair, while Z-order
  // only achieves that when incrementing its least-significant axis carries
  // no bits. Wider windows blur the families together.
  const u128 window = 1;
  std::uint64_t hilbert_close = 0, zorder_close = 0, pairs = 0;
  const auto within = [window](u128 a, u128 b) {
    return (a > b ? a - b : b - a) <= window;
  };
  for (std::uint64_t x = 0; x < side; ++x) {
    for (std::uint64_t y = 0; y + 1 < side; ++y) {
      hilbert_close +=
          within(hilbert.index_of({x, y}), hilbert.index_of({x, y + 1}));
      zorder_close +=
          within(zorder.index_of({x, y}), zorder.index_of({x, y + 1}));
      hilbert_close +=
          within(hilbert.index_of({y, x}), hilbert.index_of({y + 1, x}));
      zorder_close +=
          within(zorder.index_of({y, x}), zorder.index_of({y + 1, x}));
      pairs += 2;
    }
  }
  EXPECT_GT(hilbert_close, zorder_close);
  // At least half of all neighbor pairs stay within the window on Hilbert.
  EXPECT_GT(hilbert_close * 2, pairs);
}

TEST(Hilbert, FewerClustersThanZOrderOnRandomRects) {
  // Clusters per query rectangle (paper Fig 3): Hilbert's defining advantage.
  const unsigned bits = 5;
  const HilbertCurve hilbert(2, bits);
  const ZOrderCurve zorder(2, bits);
  const ClusterRefiner hilbert_ref(hilbert);
  const ClusterRefiner zorder_ref(zorder);
  Rng rng(7);
  std::size_t hilbert_clusters = 0, zorder_clusters = 0;
  for (int q = 0; q < 200; ++q) {
    Rect rect;
    for (int d = 0; d < 2; ++d) {
      const std::uint64_t a = rng.below(1u << bits);
      const std::uint64_t b = rng.below(1u << bits);
      rect.dims.push_back({std::min(a, b), std::max(a, b)});
    }
    hilbert_clusters += hilbert_ref.decompose(rect).size();
    zorder_clusters += zorder_ref.decompose(rect).size();
  }
  EXPECT_LT(hilbert_clusters, zorder_clusters);
}

} // namespace
} // namespace squid::sfc
