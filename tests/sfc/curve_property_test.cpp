// Property tests shared by every curve family: each curve must be a
// hierarchical bijection (digital causality) over the discrete cube, which is
// the only contract the Squid query engine relies on.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "squid/sfc/curve.hpp"
#include "squid/util/rng.hpp"

namespace squid::sfc {
namespace {

using Config = std::tuple<std::string, unsigned, unsigned>; // family, d, m

class CurveProperty : public ::testing::TestWithParam<Config> {
protected:
  void SetUp() override {
    const auto& [family, dims, bits] = GetParam();
    curve_ = make_curve(family, dims, bits);
  }

  std::unique_ptr<Curve> curve_;
};

TEST_P(CurveProperty, ReportsConfiguredGeometry) {
  const auto& [family, dims, bits] = GetParam();
  EXPECT_EQ(curve_->name(), family);
  EXPECT_EQ(curve_->dims(), dims);
  EXPECT_EQ(curve_->bits_per_dim(), bits);
  EXPECT_EQ(curve_->index_bits(), dims * bits);
  EXPECT_EQ(curve_->max_index(), low_mask(dims * bits));
}

TEST_P(CurveProperty, InverseThenForwardIsIdentity) {
  const u128 count = curve_->index_count();
  for (u128 h = 0; h < count; ++h) {
    const Point p = curve_->point_of(h);
    ASSERT_EQ(curve_->index_of(p), h) << "index " << lo64(h);
  }
}

TEST_P(CurveProperty, ForwardCoversEveryIndexExactlyOnce) {
  const u128 count = curve_->index_count();
  std::vector<bool> seen(static_cast<std::size_t>(count), false);
  Point p(curve_->dims(), 0);
  // Odometer enumeration of every lattice point.
  bool done = false;
  while (!done) {
    const u128 h = curve_->index_of(p);
    const auto slot = static_cast<std::size_t>(h);
    ASSERT_LT(h, count);
    ASSERT_FALSE(seen[slot]) << "index visited twice";
    seen[slot] = true;
    done = true;
    for (unsigned i = 0; i < curve_->dims(); ++i) {
      if (p[i] < curve_->max_coord()) {
        ++p[i];
        for (unsigned j = 0; j < i; ++j) p[j] = 0;
        done = false;
        break;
      }
    }
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST_P(CurveProperty, DigitalCausality) {
  // Every index sharing a (level*d)-bit prefix must map inside the cell
  // cell_of_prefix reports for that prefix (paper 3.1.1, Fig 2).
  for (unsigned level = 0; level <= curve_->bits_per_dim(); ++level) {
    const unsigned seg_bits = (curve_->bits_per_dim() - level) * curve_->dims();
    const u128 prefix_count = static_cast<u128>(1)
                              << (level * curve_->dims());
    for (u128 prefix = 0; prefix < prefix_count; ++prefix) {
      const Rect cell = curve_->cell_of_prefix(prefix, level);
      const u128 seg_len = static_cast<u128>(1) << seg_bits;
      for (u128 off = 0; off < seg_len; ++off) {
        const u128 h = (prefix << seg_bits) | off;
        ASSERT_TRUE(cell.contains(curve_->point_of(h)))
            << "level " << level << " prefix " << lo64(prefix);
      }
    }
  }
}

TEST_P(CurveProperty, CellVolumeMatchesSegmentLength) {
  for (unsigned level = 0; level <= curve_->bits_per_dim(); ++level) {
    const Rect cell = curve_->cell_of_prefix(0, level);
    const unsigned seg_bits = (curve_->bits_per_dim() - level) * curve_->dims();
    EXPECT_EQ(cell.volume(), static_cast<u128>(1) << seg_bits);
  }
}

TEST_P(CurveProperty, RejectsOutOfRangeInputs) {
  Point too_short(curve_->dims() > 1 ? curve_->dims() - 1 : 2, 0);
  EXPECT_THROW((void)curve_->index_of(too_short), std::invalid_argument);
  Point too_big(curve_->dims(), 0);
  too_big[0] = curve_->max_coord() + 1;
  EXPECT_THROW((void)curve_->index_of(too_big), std::invalid_argument);
  EXPECT_THROW((void)curve_->point_of(curve_->max_index() + 1),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    ExhaustiveSmallSpaces, CurveProperty,
    ::testing::Combine(::testing::Values("hilbert", "zorder", "gray"),
                       ::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param));
    });

// Wide-word sanity: spaces too large to enumerate are probed at random for
// the round-trip identity (this exercises the 128-bit paths).
class CurveWideWord : public ::testing::TestWithParam<Config> {};

TEST_P(CurveWideWord, RandomRoundTrips) {
  const auto& [family, dims, bits] = GetParam();
  const auto curve = make_curve(family, dims, bits);
  Rng rng(2026);
  for (int i = 0; i < 2000; ++i) {
    Point p(dims);
    for (auto& c : p)
      c = bits >= 64 ? rng() : rng.below(curve->max_coord() + 1);
    const u128 h = curve->index_of(p);
    EXPECT_LE(h, curve->max_index());
    EXPECT_EQ(curve->point_of(h), p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LargeSpaces, CurveWideWord,
    ::testing::Values(Config{"hilbert", 2, 60}, Config{"hilbert", 3, 40},
                      Config{"hilbert", 2, 64}, Config{"hilbert", 8, 16},
                      Config{"zorder", 3, 40}, Config{"gray", 3, 40},
                      Config{"hilbert", 1, 64}),
    [](const auto& info) {
      return std::get<0>(info.param) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param));
    });

} // namespace
} // namespace squid::sfc
