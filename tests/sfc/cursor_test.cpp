// RefineCursor correctness against the reference mapping: every cell the
// cursor reports — via seek, descend/ascend walks, child classification, and
// entry points — must be bit-identical to the Curve's root-depth
// cell_of_prefix / point_of path, and decompositions built on the cursor
// must reproduce the pre-cursor refiner output exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "squid/sfc/cursor.hpp"
#include "squid/sfc/refine.hpp"
#include "squid/util/rng.hpp"

namespace squid::sfc {
namespace {

Rect random_rect(Rng& rng, unsigned dims, std::uint64_t max_coord) {
  Rect rect;
  for (unsigned d = 0; d < dims; ++d) {
    const std::uint64_t a = rng.below(max_coord + 1);
    const std::uint64_t b = rng.below(max_coord + 1);
    rect.dims.push_back({std::min(a, b), std::max(a, b)});
  }
  return rect;
}

CellRelation reference_relation(const Curve& curve, u128 prefix,
                                unsigned level, const Rect& query) {
  const Rect cell = curve.cell_of_prefix(prefix, level);
  if (!cell.intersects(query)) return CellRelation::disjoint;
  if (query.covers(cell)) return CellRelation::covered;
  return CellRelation::partial;
}

/// The pre-cursor decompose algorithm, verbatim: explicit stack over
/// cell_of_prefix. Kept here as the oracle the cursor engine must match.
std::vector<Segment> reference_decompose(const Curve& curve, const Rect& query,
                                         unsigned max_level) {
  const ClusterRefiner refiner(curve); // for segment_of only
  const unsigned depth = std::min(max_level, curve.bits_per_dim());
  std::vector<Segment> out;
  const auto emit = [&out](const Segment& seg) {
    if (!out.empty() && out.back().hi + 1 == seg.lo) {
      out.back().hi = seg.hi;
    } else {
      out.push_back(seg);
    }
  };

  struct Frame {
    ClusterNode node;
    u128 next_child = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({ClusterNode{0, 0}, 0});
  const u128 fanout = static_cast<u128>(1) << curve.dims();
  {
    const auto rel = reference_relation(curve, 0, 0, query);
    if (rel == CellRelation::covered || depth == 0)
      return {refiner.segment_of(ClusterNode{0, 0})};
    if (rel == CellRelation::disjoint) return {};
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child == fanout) {
      stack.pop_back();
      continue;
    }
    const u128 digit = frame.next_child++;
    const ClusterNode child{(frame.node.prefix << curve.dims()) | digit,
                            frame.node.level + 1};
    const Rect cell = curve.cell_of_prefix(child.prefix, child.level);
    if (!cell.intersects(query)) continue;
    if (query.covers(cell) || child.level >= depth) {
      emit(refiner.segment_of(child));
    } else {
      stack.push_back({child, 0});
    }
  }
  return out;
}

using Config = std::tuple<std::string, unsigned, unsigned>;

class CursorOracle : public ::testing::TestWithParam<Config> {
protected:
  void SetUp() override {
    const auto& [family, dims, bits] = GetParam();
    curve_ = make_curve(family, dims, bits);
  }

  std::unique_ptr<Curve> curve_;
};

TEST_P(CursorOracle, SeekReproducesEveryReferenceCell) {
  RefineCursor cursor(*curve_);
  Rng rng(41);
  const unsigned d = curve_->dims();
  const unsigned b = curve_->bits_per_dim();
  for (unsigned level = 0; level <= b; ++level) {
    for (int trial = 0; trial < 40; ++trial) {
      const u128 prefix = rng.next128() & low_mask(level * d);
      cursor.seek(prefix, level);
      EXPECT_EQ(cursor.prefix(), prefix);
      EXPECT_EQ(cursor.level(), level);
      const Rect want = curve_->cell_of_prefix(prefix, level);
      InlineRect got;
      cursor.cell(got);
      ASSERT_EQ(got.to_rect(), want) << "level " << level;
      for (unsigned i = 0; i < d; ++i) {
        EXPECT_EQ(cursor.cell_lo(i), want.dims[i].lo);
        EXPECT_EQ(cursor.cell_hi(i), want.dims[i].hi);
      }
    }
  }
}

TEST_P(CursorOracle, DescendAscendWalkTracksReference) {
  RefineCursor cursor(*curve_);
  Rng rng(42);
  const unsigned d = curve_->dims();
  const unsigned b = curve_->bits_per_dim();
  for (int walk = 0; walk < 30; ++walk) {
    cursor.reset();
    std::vector<u128> digits;
    u128 prefix = 0;
    // All the way down...
    for (unsigned level = 0; level < b; ++level) {
      const u128 digit = rng.next128() & low_mask(d);
      digits.push_back(digit);
      cursor.descend(digit);
      prefix = (prefix << d) | digit;
      InlineRect got;
      cursor.cell(got);
      ASSERT_EQ(got.to_rect(), curve_->cell_of_prefix(prefix, level + 1));
    }
    // ...and back up, re-checking each ancestor cell.
    for (unsigned level = b; level-- > 0;) {
      cursor.ascend();
      prefix >>= d;
      InlineRect got;
      cursor.cell(got);
      ASSERT_EQ(got.to_rect(), curve_->cell_of_prefix(prefix, level));
    }
  }
}

TEST_P(CursorOracle, EntryPointMatchesInverseMappingOfSegmentLow) {
  RefineCursor cursor(*curve_);
  Rng rng(43);
  const unsigned d = curve_->dims();
  const unsigned b = curve_->bits_per_dim();
  std::vector<std::uint64_t> got(d);
  for (unsigned level = 0; level <= b; ++level) {
    for (int trial = 0; trial < 40; ++trial) {
      const u128 prefix = rng.next128() & low_mask(level * d);
      cursor.seek(prefix, level);
      const unsigned shift = (b - level) * d;
      const u128 lo_index = shift >= 128 ? 0 : prefix << shift;
      const Point want = curve_->point_of(lo_index);
      cursor.entry_point(got.data());
      for (unsigned i = 0; i < d; ++i)
        ASSERT_EQ(got[i], want[i]) << "level " << level << " axis " << i;
    }
  }
}

TEST_P(CursorOracle, RelationAndChildClassificationMatchReference) {
  RefineCursor cursor(*curve_);
  Rng rng(44);
  const unsigned d = curve_->dims();
  const unsigned b = curve_->bits_per_dim();
  const u128 fanout = cursor.fanout();
  for (int q = 0; q < 25; ++q) {
    const Rect rect = random_rect(rng, d, curve_->max_coord());
    for (unsigned level = 0; level <= b; ++level) {
      const u128 prefix = rng.next128() & low_mask(level * d);
      cursor.seek(prefix, level);
      EXPECT_EQ(cursor.relation_to(rect),
                reference_relation(*curve_, prefix, level, rect));
      if (level == b) continue;
      for (u128 w = 0; w < fanout; ++w) {
        const u128 child_prefix = (prefix << d) | w;
        ASSERT_EQ(cursor.classify_child(w, rect),
                  reference_relation(*curve_, child_prefix, level + 1, rect))
            << "level " << level << " child " << static_cast<unsigned>(w);
      }
    }
  }
}

TEST_P(CursorOracle, DecomposeIsUnchangedFromReferenceEngine) {
  const ClusterRefiner refiner(*curve_);
  Rng rng(45);
  const unsigned b = curve_->bits_per_dim();
  for (int q = 0; q < 60; ++q) {
    const Rect rect = random_rect(rng, curve_->dims(), curve_->max_coord());
    for (unsigned depth : {1u, b / 2, b}) {
      ASSERT_EQ(refiner.decompose(rect, depth),
                reference_decompose(*curve_, rect, depth))
          << "query " << q << " depth " << depth;
    }
  }
}

TEST_P(CursorOracle, DecomposeCappedIsUnchangedFromReferenceEngine) {
  const ClusterRefiner refiner(*curve_);
  Rng rng(46);
  for (int q = 0; q < 40; ++q) {
    const Rect rect = random_rect(rng, curve_->dims(), curve_->max_coord());
    for (std::size_t cap : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
      // The pre-cursor progressive deepening, verbatim: full re-decomposition
      // per level, keep the deepest result within the cap.
      std::vector<Segment> best = reference_decompose(*curve_, rect, 1);
      for (unsigned level = 2; level <= curve_->bits_per_dim(); ++level) {
        std::vector<Segment> next = reference_decompose(*curve_, rect, level);
        if (next.size() > cap) break;
        const bool converged = next == best;
        best = std::move(next);
        if (converged) break;
      }
      ASSERT_EQ(refiner.decompose_capped(rect, cap), best)
          << "query " << q << " cap " << cap;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, CursorOracle,
    ::testing::Values(Config{"hilbert", 1, 16}, Config{"hilbert", 2, 8},
                      Config{"hilbert", 3, 5}, Config{"hilbert", 4, 4},
                      Config{"hilbert", 5, 3}, Config{"hilbert", 6, 2},
                      Config{"zorder", 1, 12}, Config{"zorder", 2, 8},
                      Config{"zorder", 3, 5}, Config{"zorder", 6, 2},
                      Config{"gray", 1, 12}, Config{"gray", 2, 8},
                      Config{"gray", 3, 5}, Config{"gray", 6, 2}),
    [](const auto& info) {
      return std::get<0>(info.param) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Cursor, SeekAfterDeepWalkRestoresState) {
  // Interleave seeks and walks to make sure seek fully rebuilds the
  // orientation stack (no stale state survives).
  const auto curve = make_curve("hilbert", 3, 8);
  RefineCursor cursor(*curve);
  Rng rng(47);
  for (int i = 0; i < 200; ++i) {
    const unsigned level = 1 + static_cast<unsigned>(rng.below(8));
    const u128 prefix = rng.next128() & low_mask(level * 3);
    cursor.seek(prefix, level);
    InlineRect got;
    cursor.cell(got);
    ASSERT_EQ(got.to_rect(), curve->cell_of_prefix(prefix, level));
    // Random sub-walk, then the next iteration's seek must still be exact.
    if (level < 8 && rng.below(2)) cursor.descend(rng.next128() & low_mask(3));
  }
}

TEST(Cursor, HandlesMaxGeometryCurves) {
  // The widest supported geometries: 128x1 (fanout is the whole space) is
  // exercised via d=64 b=2 and d=2 b=64 here to keep runtime sane; both hit
  // the >=64-bit shift guards in the coordinate math.
  for (auto [family, d, b] : {std::tuple<const char*, unsigned, unsigned>
                                  {"hilbert", 2, 64},
                              {"zorder", 2, 64},
                              {"hilbert", 64, 2},
                              {"gray", 63, 2}}) {
    const auto curve = make_curve(family, d, b);
    RefineCursor cursor(*curve);
    Rng rng(48);
    for (int trial = 0; trial < 20; ++trial) {
      const unsigned level = static_cast<unsigned>(rng.below(b + 1));
      const u128 prefix = rng.next128() & low_mask(level * d);
      cursor.seek(prefix, level);
      InlineRect got;
      cursor.cell(got);
      ASSERT_EQ(got.to_rect(), curve->cell_of_prefix(prefix, level))
          << family << " level " << level;
    }
  }
}

} // namespace
} // namespace squid::sfc
