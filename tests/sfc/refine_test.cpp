// ClusterRefiner correctness against a brute-force oracle: the decomposition
// must cover exactly the indices whose points fall inside the query
// rectangle, with maximal (merged) segments in curve order.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "squid/sfc/refine.hpp"
#include "squid/util/rng.hpp"

namespace squid::sfc {
namespace {

std::vector<bool> oracle_membership(const Curve& curve, const Rect& rect) {
  const auto count = static_cast<std::size_t>(curve.index_count());
  std::vector<bool> in(count, false);
  for (std::size_t h = 0; h < count; ++h)
    in[h] = rect.contains(curve.point_of(static_cast<u128>(h)));
  return in;
}

std::vector<Segment> oracle_segments(const std::vector<bool>& in) {
  std::vector<Segment> segs;
  for (std::size_t h = 0; h < in.size(); ++h) {
    if (!in[h]) continue;
    if (!segs.empty() && segs.back().hi + 1 == static_cast<u128>(h)) {
      segs.back().hi = static_cast<u128>(h);
    } else {
      segs.push_back({static_cast<u128>(h), static_cast<u128>(h)});
    }
  }
  return segs;
}

Rect random_rect(Rng& rng, unsigned dims, std::uint64_t max_coord) {
  Rect rect;
  for (unsigned d = 0; d < dims; ++d) {
    const std::uint64_t a = rng.below(max_coord + 1);
    const std::uint64_t b = rng.below(max_coord + 1);
    rect.dims.push_back({std::min(a, b), std::max(a, b)});
  }
  return rect;
}

using Config = std::tuple<std::string, unsigned, unsigned>;

class RefinerOracle : public ::testing::TestWithParam<Config> {
protected:
  void SetUp() override {
    const auto& [family, dims, bits] = GetParam();
    curve_ = make_curve(family, dims, bits);
    refiner_ = std::make_unique<ClusterRefiner>(*curve_);
  }

  std::unique_ptr<Curve> curve_;
  std::unique_ptr<ClusterRefiner> refiner_;
};

TEST_P(RefinerOracle, DecomposeMatchesBruteForce) {
  Rng rng(31);
  for (int q = 0; q < 100; ++q) {
    const Rect rect = random_rect(rng, curve_->dims(), curve_->max_coord());
    const auto expected = oracle_segments(oracle_membership(*curve_, rect));
    const auto got = refiner_->decompose(rect);
    ASSERT_EQ(got, expected) << "query " << q;
  }
}

TEST_P(RefinerOracle, SegmentsAreSortedDisjointAndMaximal) {
  Rng rng(32);
  for (int q = 0; q < 50; ++q) {
    const Rect rect = random_rect(rng, curve_->dims(), curve_->max_coord());
    const auto segs = refiner_->decompose(rect);
    for (std::size_t i = 0; i < segs.size(); ++i) {
      ASSERT_LE(segs[i].lo, segs[i].hi);
      if (i > 0) {
        // Strictly after the previous one and not mergeable with it.
        ASSERT_GT(segs[i].lo, segs[i - 1].hi);
        ASSERT_GT(segs[i].lo - segs[i - 1].hi, static_cast<u128>(1));
      }
    }
  }
}

TEST_P(RefinerOracle, ClassifyMatchesBruteForce) {
  Rng rng(33);
  for (int q = 0; q < 30; ++q) {
    const Rect rect = random_rect(rng, curve_->dims(), curve_->max_coord());
    for (unsigned level = 0; level <= curve_->bits_per_dim(); ++level) {
      const u128 prefixes = static_cast<u128>(1) << (level * curve_->dims());
      for (u128 p = 0; p < prefixes; ++p) {
        const ClusterNode node{p, level};
        const Segment seg = refiner_->segment_of(node);
        std::size_t inside = 0;
        for (u128 h = seg.lo; h <= seg.hi; ++h)
          inside += rect.contains(curve_->point_of(h));
        const auto rel = refiner_->classify(node, rect);
        const u128 seg_len = seg.length();
        if (inside == 0) {
          ASSERT_EQ(rel, ClusterRefiner::CellRelation::disjoint);
        } else if (static_cast<u128>(inside) == seg_len) {
          ASSERT_EQ(rel, ClusterRefiner::CellRelation::covered);
        } else {
          ASSERT_EQ(rel, ClusterRefiner::CellRelation::partial);
        }
      }
    }
  }
}

TEST_P(RefinerOracle, RefineReturnsIntersectingChildrenInCurveOrder) {
  Rng rng(34);
  for (int q = 0; q < 30; ++q) {
    const Rect rect = random_rect(rng, curve_->dims(), curve_->max_coord());
    for (unsigned level = 0; level < curve_->bits_per_dim(); ++level) {
      const ClusterNode node{0, level}; // walk the first spine
      const auto children = refiner_->refine(node, rect);
      u128 prev = 0;
      bool first = true;
      for (const auto& child : children) {
        EXPECT_EQ(child.level, level + 1);
        if (!first) {
          EXPECT_GT(child.prefix, prev);
        }
        prev = child.prefix;
        first = false;
        EXPECT_NE(refiner_->classify(child, rect),
                  ClusterRefiner::CellRelation::disjoint);
      }
    }
  }
}

TEST_P(RefinerOracle, BoundedDepthOverApproximates) {
  Rng rng(35);
  for (int q = 0; q < 30; ++q) {
    const Rect rect = random_rect(rng, curve_->dims(), curve_->max_coord());
    const auto membership = oracle_membership(*curve_, rect);
    for (unsigned depth = 0; depth <= curve_->bits_per_dim(); ++depth) {
      const auto segs = refiner_->decompose(rect, depth);
      // Every matching index must be covered at every depth.
      for (std::size_t h = 0; h < membership.size(); ++h) {
        if (!membership[h]) continue;
        bool covered = false;
        for (const auto& s : segs) covered |= s.contains(static_cast<u128>(h));
        ASSERT_TRUE(covered) << "depth " << depth << " index " << h;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallSpaces, RefinerOracle,
    ::testing::Values(Config{"hilbert", 2, 3}, Config{"hilbert", 2, 5},
                      Config{"hilbert", 3, 3}, Config{"hilbert", 4, 2},
                      Config{"zorder", 2, 4}, Config{"zorder", 3, 3},
                      Config{"gray", 2, 4}, Config{"gray", 3, 3},
                      Config{"hilbert", 1, 8}),
    [](const auto& info) {
      return std::get<0>(info.param) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Refiner, FullSpaceIsOneSegment) {
  const auto curve = make_curve("hilbert", 2, 4);
  const ClusterRefiner refiner(*curve);
  Rect all{{{0, 15}, {0, 15}}};
  const auto segs = refiner.decompose(all);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{0, curve->max_index()}));
}

TEST(Refiner, SinglePointIsUnitSegmentAtItsIndex) {
  const auto curve = make_curve("hilbert", 3, 3);
  const ClusterRefiner refiner(*curve);
  Rng rng(36);
  for (int i = 0; i < 50; ++i) {
    Point p{rng.below(8), rng.below(8), rng.below(8)};
    Rect rect{{{p[0], p[0]}, {p[1], p[1]}, {p[2], p[2]}}};
    const auto segs = refiner.decompose(rect);
    ASSERT_EQ(segs.size(), 1u);
    const u128 h = curve->index_of(p);
    EXPECT_EQ(segs[0], (Segment{h, h}));
  }
}

TEST(Refiner, PaperExampleQueryElevenStar) {
  // The paper's running example (Figs 6-7): query (11, *) in a 2D space with
  // 3-bit base-2 coordinates — the column x in {110, 111}, y free. The paper
  // reports 1 cluster on the 1st-order curve, 2 on the 2nd, 4 on the 3rd.
  // Our Hilbert orientation (Skilling) may be a rotation/reflection of the
  // paper's figures, so we check the structural facts that are
  // orientation-independent: exact cover of the 16 matching cells, monotone
  // cluster growth with refinement depth, and a handful of clusters (far
  // fewer than the 16 cells) at full depth.
  const auto curve = make_curve("hilbert", 2, 3);
  const ClusterRefiner refiner(*curve);
  const Rect query{{{6, 7}, {0, 7}}};

  u128 covered = 0;
  std::size_t prev_clusters = 0;
  for (unsigned depth = 1; depth <= 3; ++depth) {
    const auto segs = refiner.decompose(query, depth);
    EXPECT_GE(segs.size(), prev_clusters);
    prev_clusters = segs.size();
    covered = 0;
    for (const auto& s : segs) covered += s.length();
  }
  EXPECT_EQ(covered, static_cast<u128>(16)); // exact at full depth
  EXPECT_LE(prev_clusters, 6u);
  EXPECT_GE(prev_clusters, 2u);
}

TEST(Refiner, DepthZeroReturnsWholeSpaceWhenQueryNonEmpty) {
  const auto curve = make_curve("hilbert", 2, 4);
  const ClusterRefiner refiner(*curve);
  Rect rect{{{3, 5}, {7, 9}}};
  const auto segs = refiner.decompose(rect, 0);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{0, curve->max_index()}));
}

TEST(Refiner, CountTreeNodesAtLeastSegmentCount) {
  const auto curve = make_curve("hilbert", 2, 5);
  const ClusterRefiner refiner(*curve);
  Rng rng(37);
  for (int q = 0; q < 30; ++q) {
    Rect rect;
    for (int d = 0; d < 2; ++d) {
      const std::uint64_t a = rng.below(32);
      const std::uint64_t b = rng.below(32);
      rect.dims.push_back({std::min(a, b), std::max(a, b)});
    }
    EXPECT_GE(refiner.count_tree_nodes(rect), refiner.decompose(rect).size());
  }
}

TEST(Refiner, RejectsMalformedQueries) {
  const auto curve = make_curve("hilbert", 2, 4);
  const ClusterRefiner refiner(*curve);
  Rect wrong_dims{{{0, 1}}};
  EXPECT_THROW((void)refiner.decompose(wrong_dims), std::invalid_argument);
  Rect inverted{{{5, 3}, {0, 1}}};
  EXPECT_THROW((void)refiner.decompose(inverted), std::invalid_argument);
  Rect too_wide{{{0, 16}, {0, 1}}};
  EXPECT_THROW((void)refiner.decompose(too_wide), std::invalid_argument);
}

} // namespace
} // namespace squid::sfc
