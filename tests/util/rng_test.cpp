#include "squid/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

namespace squid {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedResetsSequence) {
  Rng a(77);
  const auto first = a();
  a.reseed(77);
  EXPECT_EQ(a(), first);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(42);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBound)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBound * 0.9);
    EXPECT_LT(c, kDraws / kBound * 1.1);
  }
}

TEST(Rng, RangeInclusiveEndpointsReachable) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
    saw_lo |= (v == 10);
    saw_hi |= (v == 12);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Below128StaysInBounds) {
  Rng rng(11);
  const u128 bound = make_u128(1, 0); // 2^64
  for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below128(bound), bound);
  for (int i = 0; i < 200; ++i)
    EXPECT_LT(rng.below128(static_cast<u128>(3)), static_cast<u128>(3));
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(21);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v); // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.fork();
  // Child should not replay the parent's stream.
  Rng parent_copy(99);
  (void)parent_copy(); // consume the draw fork() used
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child() == parent_copy());
  EXPECT_LT(equal, 3);
}

TEST(Zipf, RanksAreWithinRange) {
  Rng rng(7);
  ZipfSampler zipf(50, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 50u);
}

TEST(Zipf, LowRanksDominate) {
  Rng rng(13);
  ZipfSampler zipf(1000, 1.0);
  constexpr int kDraws = 50000;
  int top10 = 0;
  for (int i = 0; i < kDraws; ++i) top10 += (zipf.sample(rng) < 10);
  // With s=1, n=1000: P(rank < 10) = H(10)/H(1000) ~ 2.93/7.49 ~ 0.39.
  EXPECT_GT(top10, kDraws * 0.33);
  EXPECT_LT(top10, kDraws * 0.45);
}

TEST(Zipf, ExponentZeroIsUniform) {
  Rng rng(17);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(Zipf, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

} // namespace
} // namespace squid
