#include "squid/util/u128.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace squid {
namespace {

TEST(U128, MakeAndSplitRoundTrip) {
  const u128 v = make_u128(0x0123456789abcdefull, 0xfedcba9876543210ull);
  EXPECT_EQ(hi64(v), 0x0123456789abcdefull);
  EXPECT_EQ(lo64(v), 0xfedcba9876543210ull);
}

TEST(U128, LowMaskBoundaries) {
  EXPECT_EQ(low_mask(0), static_cast<u128>(0));
  EXPECT_EQ(low_mask(1), static_cast<u128>(1));
  EXPECT_EQ(low_mask(64), make_u128(0, ~std::uint64_t{0}));
  EXPECT_EQ(low_mask(127), u128_max >> 1);
  EXPECT_EQ(low_mask(128), u128_max);
  EXPECT_EQ(low_mask(200), u128_max);
}

TEST(U128, BitWidth) {
  EXPECT_EQ(bit_width(static_cast<u128>(0)), 0u);
  EXPECT_EQ(bit_width(static_cast<u128>(1)), 1u);
  EXPECT_EQ(bit_width(static_cast<u128>(0xff)), 8u);
  EXPECT_EQ(bit_width(make_u128(1, 0)), 65u);
  EXPECT_EQ(bit_width(u128_max), 128u);
}

TEST(U128, ToStringSmallValues) {
  EXPECT_EQ(to_string(static_cast<u128>(0)), "0");
  EXPECT_EQ(to_string(static_cast<u128>(7)), "7");
  EXPECT_EQ(to_string(static_cast<u128>(1234567890ull)), "1234567890");
}

TEST(U128, ToStringMaxValue) {
  EXPECT_EQ(to_string(u128_max), "340282366920938463463374607431768211455");
}

TEST(U128, ParseRoundTrip) {
  for (const u128 v :
       {static_cast<u128>(0), static_cast<u128>(42), make_u128(3, 17),
        u128_max - 1, u128_max}) {
    EXPECT_EQ(parse_u128(to_string(v)), v);
  }
}

TEST(U128, ParseRejectsGarbage) {
  EXPECT_THROW(parse_u128(""), std::invalid_argument);
  EXPECT_THROW(parse_u128("12a"), std::invalid_argument);
  EXPECT_THROW(parse_u128("-1"), std::invalid_argument);
}

TEST(U128, ParseRejectsOverflow) {
  EXPECT_THROW(parse_u128("340282366920938463463374607431768211456"),
               std::out_of_range);
}

TEST(U128, BinaryStringShowsPrefixes) {
  EXPECT_EQ(to_binary_string(static_cast<u128>(0b1011), 6), "001011");
  EXPECT_EQ(to_binary_string(static_cast<u128>(0), 3), "000");
  EXPECT_THROW(to_binary_string(static_cast<u128>(1), 129),
               std::invalid_argument);
}

TEST(U128, HexString) {
  EXPECT_EQ(to_hex_string(static_cast<u128>(0)), "0x0");
  EXPECT_EQ(to_hex_string(static_cast<u128>(0xdeadbeef)), "0xdeadbeef");
  EXPECT_EQ(to_hex_string(u128_max), "0xffffffffffffffffffffffffffffffff");
}

} // namespace
} // namespace squid
