#include "squid/stats/summary.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace squid {
namespace {

TEST(Summary, BasicMoments) {
  Summary s({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0); // classic textbook sample
}

TEST(Summary, EmptySampleIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.max_over_mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.gini(), 0.0);
  // Every aggregate of an empty series is a defined 0.0 — including the
  // order statistics; report pipelines must not have to special-case an
  // empty figure series.
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 0.0);
  // The argument contract still holds even with no samples.
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(Summary, SingleSampleIsDefinedEverywhere) {
  Summary s({7.0});
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0); // fewer than two samples: no spread
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
  EXPECT_DOUBLE_EQ(s.max_over_mean(), 1.0);
  EXPECT_DOUBLE_EQ(s.gini(), 0.0);
  for (const double p : {0.0, 25.0, 50.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(s.percentile(p), 7.0);
}

TEST(Summary, AllZeroSampleAvoidsDivisionByZero) {
  Summary s({0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);           // mean 0: ratio defined as 0
  EXPECT_DOUBLE_EQ(s.max_over_mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.gini(), 0.0);         // zero total: perfect equality
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(Summary, CvAndMaxOverMean) {
  Summary balanced({5, 5, 5, 5});
  EXPECT_DOUBLE_EQ(balanced.cv(), 0.0);
  EXPECT_DOUBLE_EQ(balanced.max_over_mean(), 1.0);

  Summary skewed({0, 0, 0, 20});
  EXPECT_DOUBLE_EQ(skewed.mean(), 5.0);
  EXPECT_DOUBLE_EQ(skewed.max_over_mean(), 4.0);
  EXPECT_GT(skewed.cv(), 1.0);
}

TEST(Summary, GiniExtremes) {
  EXPECT_DOUBLE_EQ(Summary({3, 3, 3, 3}).gini(), 0.0);
  // All mass on one of n holders: Gini = (n-1)/n.
  EXPECT_NEAR(Summary({0, 0, 0, 12}).gini(), 0.75, 1e-12);
}

TEST(Summary, GiniIsScaleInvariant) {
  const Summary a({1, 2, 3, 4, 5});
  const Summary b({10, 20, 30, 40, 50});
  EXPECT_NEAR(a.gini(), b.gini(), 1e-12);
}

TEST(Summary, PercentileInterpolates) {
  Summary s({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(Summary, AddAccumulates) {
  Summary s;
  s.add(1);
  s.add(3);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Histogram, BucketsPartitionRange) {
  Histogram h(0, 100, 10);
  EXPECT_EQ(h.buckets(), 10u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(9), 90.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(9), 100.0);
}

TEST(Histogram, ValuesLandInCorrectBucket) {
  Histogram h(0, 10, 5);
  h.add(0.5);
  h.add(2.0);
  h.add(9.9);
  h.add(5.0, 3); // weighted
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 3u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0, 10, 2);
  h.add(-5);
  h.add(15);
  h.add(10); // hi boundary clamps into last bucket
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
}

TEST(Histogram, RejectsDegenerateConfig) {
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5, 5, 3), std::invalid_argument);
}

} // namespace
} // namespace squid
