// TieredStore property suite (DESIGN.md 4j): random mutation interleavings
// against a std::map oracle, threshold invariance (every delta_cap yields
// identical reads), order statistics, and the structural invariants.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "squid/util/rng.hpp"
#include "squid/util/store.hpp"

namespace squid::util {
namespace {

/// Every merged-read surface must match the ordered-map oracle exactly.
void check_against(const TieredStore<int>& store,
                   const std::map<u128, int>& oracle) {
  store.check_invariants();
  ASSERT_EQ(store.size(), oracle.size());
  ASSERT_EQ(store.empty(), oracle.empty());

  // for_each: same keys, same payloads, ascending.
  auto it = oracle.begin();
  store.for_each([&](u128 key, const int& payload) {
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(key, it->first);
    EXPECT_EQ(payload, it->second);
    ++it;
  });
  EXPECT_EQ(it, oracle.end());

  // materialize + order statistics.
  const auto keys = store.materialize_keys();
  ASSERT_EQ(keys.size(), oracle.size());
  std::size_t k = 0;
  for (const auto& [key, payload] : oracle) {
    EXPECT_EQ(keys[k], key);
    EXPECT_EQ(store.kth(k), key);
    ++k;
  }

  // find on every live key, and on probes straddling the key set.
  for (const auto& [key, payload] : oracle) {
    const int* found = store.find(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, payload);
  }

  // rank_after at keys, at key-1/key+1, and at the extremes.
  const auto oracle_rank = [&](u128 v) {
    return static_cast<std::size_t>(std::distance(
        oracle.begin(), oracle.upper_bound(v)));
  };
  for (const auto& [key, payload] : oracle) {
    EXPECT_EQ(store.rank_after(key), oracle_rank(key));
    if (key > 0) {
      EXPECT_EQ(store.rank_after(key - 1), oracle_rank(key - 1));
    }
    EXPECT_EQ(store.rank_after(key + 1), oracle_rank(key + 1));
  }
  EXPECT_EQ(store.rank_after(0), oracle_rank(0));
  EXPECT_EQ(store.rank_after(~u128{0}), oracle.size());
}

TEST(TieredStore, RandomInterleavingsMatchMapOracle) {
  Rng rng(0x7e1d);
  TieredStore<int> store; // default sqrt policy
  std::map<u128, int> oracle;
  std::vector<u128> live;

  for (int step = 0; step < 3000; ++step) {
    const u128 key = rng.below(512); // small space: plenty of collisions
    switch (rng.below(4)) {
    case 0: { // erase a live key
      if (live.empty()) break;
      const std::size_t pick = rng.below(live.size());
      const u128 victim = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      EXPECT_TRUE(store.erase(victim));
      oracle.erase(victim);
      EXPECT_FALSE(store.erase(victim)); // double-erase reports absence
      EXPECT_EQ(store.find(victim), nullptr);
      break;
    }
    case 1: { // erase a possibly-absent key
      const bool lived = oracle.erase(key) > 0;
      EXPECT_EQ(store.erase(key), lived);
      if (lived) live.erase(std::find(live.begin(), live.end(), key));
      break;
    }
    default: { // obtain (insert or update in place)
      const int value = static_cast<int>(step);
      const bool existed = oracle.count(key) > 0;
      store.obtain(key) = value;
      oracle[key] = value;
      if (!existed) live.push_back(key);
    }
    }
    if (step % 250 == 0) check_against(store, oracle);
  }
  check_against(store, oracle);
  EXPECT_GT(store.stats().merges, 0u); // the policy actually folded
}

TEST(TieredStore, EveryDeltaCapReadsIdentically) {
  // The same operation sequence under different merge thresholds — including
  // cap 1, the flat-store degenerate — must expose identical reads at every
  // step; only stats().merges may differ.
  const std::size_t caps[] = {0, 1, 2, 7, 64};
  std::vector<TieredStore<int>> stores;
  for (const std::size_t cap : caps) stores.emplace_back(cap);

  Rng rng(0xca95);
  std::map<u128, int> oracle;
  for (int step = 0; step < 1200; ++step) {
    const u128 key = rng.below(256);
    if (rng.below(3) == 0) {
      const bool lived = oracle.erase(key) > 0;
      for (auto& s : stores) EXPECT_EQ(s.erase(key), lived);
    } else {
      oracle[key] = step;
      for (auto& s : stores) s.obtain(key) = step;
    }
    if (step % 100 == 0) {
      const auto reference = stores[0].materialize_keys();
      for (auto& s : stores) {
        check_against(s, oracle);
        EXPECT_EQ(s.materialize_keys(), reference);
      }
    }
  }
  // cap 1 merges on every mutation that touches delta/tombstones; the sqrt
  // policy merges far less often.
  EXPECT_GT(stores[1].stats().merges, stores[0].stats().merges);
}

TEST(TieredStore, TombstoneResurrectionKeepsSlotInPlace) {
  TieredStore<int> store(64); // wide cap: no merge during this choreography
  // Build a base tier via an explicit merge.
  for (u128 k = 10; k <= 50; k += 10) store.obtain(k) = static_cast<int>(k);
  store.merge();
  EXPECT_EQ(store.delta_size(), 0u);

  // Tombstone a base key: size shrinks, find misses, payload cleared.
  EXPECT_TRUE(store.erase(30));
  EXPECT_EQ(store.tombstones(), 1u);
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.find(30), nullptr);

  // Republish resurrects the slot in place — no delta entry appears.
  store.obtain(30) = 777;
  EXPECT_EQ(store.tombstones(), 0u);
  EXPECT_EQ(store.delta_size(), 0u);
  EXPECT_EQ(store.size(), 5u);
  ASSERT_NE(store.find(30), nullptr);
  EXPECT_EQ(*store.find(30), 777);
  store.check_invariants();
}

TEST(TieredStore, ScansMergeTiersInKeyOrder) {
  TieredStore<int> store(1000);
  for (u128 k = 0; k < 40; k += 2) store.obtain(k) = 1; // evens -> base
  store.merge();
  for (u128 k = 1; k < 40; k += 2) store.obtain(k) = 2; // odds -> delta
  EXPECT_TRUE(store.erase(10));                         // a tombstone
  EXPECT_EQ(store.delta_size(), 20u);
  EXPECT_EQ(store.tombstones(), 1u);

  std::vector<u128> seen;
  store.scan(5, 15, [&](u128 key, const int&) { seen.push_back(key); });
  EXPECT_EQ(seen, (std::vector<u128>{5, 6, 7, 8, 9, 11, 12, 13, 14, 15}));

  std::vector<u128> keys;
  std::vector<int> payloads;
  store.snapshot_range(5, 15, keys, payloads);
  EXPECT_EQ(keys, seen);
  ASSERT_EQ(payloads.size(), 10u);
  // Payload provenance: evens came from base (payload 1), odds from delta.
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(payloads[i], (keys[i] % 2 == 0) ? 1 : 2);
}

TEST(TieredStore, MergeThresholdRuleIsExact) {
  EXPECT_EQ(store_merge_threshold(0, 5), 5u);   // explicit cap wins
  EXPECT_EQ(store_merge_threshold(1 << 20, 1), 1u);
  EXPECT_EQ(store_merge_threshold(0, 0), 64u);  // floor
  EXPECT_EQ(store_merge_threshold(100, 0), 64u);
  EXPECT_EQ(store_merge_threshold(1 << 10, 0), 128u); // 4*sqrt(1024)
  EXPECT_EQ(store_merge_threshold(1 << 16, 0), 1024u);

  // A store at cap 1 folds every mutation: delta and tombstones never
  // survive a call.
  TieredStore<int> flat(1);
  Rng rng(0xf1a7);
  for (int i = 0; i < 200; ++i) {
    const u128 key = rng.below(64);
    if (rng.below(3) == 0) {
      (void)flat.erase(key);
    } else {
      flat.obtain(key) = i;
    }
    EXPECT_EQ(flat.delta_size(), 0u);
    EXPECT_EQ(flat.tombstones(), 0u);
  }
}

TEST(TieredStore, BulkUpdateRunsOverMergedBase) {
  TieredStore<int> store(1000);
  for (u128 k = 0; k < 10; ++k) store.obtain(k) = 1;
  EXPECT_TRUE(store.erase(3));
  const std::uint64_t merges_before = store.stats().merges;
  store.bulk_update([&](std::vector<u128>& keys, std::vector<int>& payloads) {
    // The fold ran first: tiers are empty, tombstoned key 3 is gone.
    EXPECT_EQ(keys.size(), 9u);
    EXPECT_EQ(std::count(keys.begin(), keys.end(), u128{3}), 0);
    keys.push_back(100);
    payloads.push_back(42);
  });
  EXPECT_EQ(store.stats().merges, merges_before + 1);
  EXPECT_EQ(store.size(), 10u);
  ASSERT_NE(store.find(100), nullptr);
  EXPECT_EQ(*store.find(100), 42);
  store.check_invariants();
}

} // namespace
} // namespace squid::util
