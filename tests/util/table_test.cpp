#include "squid/stats/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace squid {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"query", "matches"});
  t.add_row({"q1", "260"});
  t.add_row({"range", "7"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| query | matches |"), std::string::npos);
  EXPECT_NE(out.find("260"), std::string::npos);
  EXPECT_NE(out.find("range"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchRejected) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumericCellFormatting) {
  EXPECT_EQ(Table::cell(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::cell(2.5), "2.5");
  EXPECT_EQ(Table::cell(3.0), "3");
}

} // namespace
} // namespace squid
