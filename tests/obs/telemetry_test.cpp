// The virtual-time telemetry pipeline's unit contracts (DESIGN.md 4h):
//   - Registry::snapshot_delta partitions the counter stream into
//     non-overlapping windows (the primitive the sampler and CLI share);
//   - EpochSampler buckets flushed query events by rebased virtual tick,
//     closes epochs in order under advance_to, and materializes a
//     contiguous series at finish() — repeatably;
//   - HotspotDetector's EWMA lifecycle: onset over a learned baseline,
//     frozen-while-hot, clear on decay or disappearance, deterministic
//     top-k, measured detection latency;
//   - the exporters: heatmap/series CSV goldens, JSON structure, and
//     Perfetto counter-track validity, including the empty-series and
//     single-epoch edges.
// Pipeline-level bit-transparency lives in telemetry_differential_test.cpp.

#include <gtest/gtest.h>

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "squid/obs/export.hpp"
#include "squid/obs/hotspot.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/obs/telemetry.hpp"

namespace squid::obs {
namespace {

// --- Registry::snapshot_delta --------------------------------------------

TEST(SnapshotDelta, PartitionsTheCounterStreamIntoWindows) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  Registry reg;
  reg.counter("x").add(5);
  auto d = reg.snapshot_delta();
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].name, "x");
  EXPECT_EQ(d[0].value, 5u);

  reg.counter("x").add(2);
  d = reg.snapshot_delta();
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].value, 2u); // only the movement since the last window

  EXPECT_TRUE(reg.snapshot_delta().empty()); // nothing moved
}

TEST(SnapshotDelta, LateRegisteredCountersReportTheirFullValue) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  Registry reg;
  reg.counter("old").add(9);
  (void)reg.snapshot_delta();
  reg.counter("young").add(4);
  const auto d = reg.snapshot_delta();
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].name, "young");
  EXPECT_EQ(d[0].value, 4u);
}

TEST(SnapshotDelta, ResetRestartsTheWindowAtZero) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  Registry reg;
  reg.counter("x").add(5);
  (void)reg.snapshot_delta();
  reg.reset();
  reg.counter("x").add(3);
  const auto d = reg.snapshot_delta();
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].value, 3u); // not 5+3, and not clamped away by the reset
}

// --- LoadVector / QueryTelemetry -----------------------------------------

TEST(LoadVector, SumsComponentwiseAndTotals) {
  LoadVector a;
  a.scan_hits = 2;
  a.routes_through = 3;
  LoadVector b;
  b.publishes = 5;
  b.retracts = 13;
  b.cache_hits = 7;
  b.replies_forwarded = 11;
  a += b;
  EXPECT_EQ(a.total(), 2u + 3u + 5u + 13u + 7u + 11u);
  LoadVector c = a;
  EXPECT_TRUE(c == a);
  c.scan_hits += 1;
  EXPECT_FALSE(c == a);
}

TEST(QueryTelemetry, DropsZeroWeightEvents) {
  QueryTelemetry t;
  t.record(1, LoadKind::kScanHit, 0, 4);
  EXPECT_TRUE(t.events.empty());
  t.record(1, LoadKind::kScanHit, 2, 4);
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_EQ(t.events[0].n, 2u);
}

// --- EpochSampler ---------------------------------------------------------

TEST(EpochSampler, BucketsFlushedEventsByTick) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  EpochSampler sampler(10);
  QueryTelemetry t;
  t.record(1, LoadKind::kScanHit, 2, 0);
  t.record(1, LoadKind::kRouteThrough, 1, 9); // still epoch 0
  t.record(2, LoadKind::kCacheHit, 3, 10);    // epoch 1
  t.record(2, LoadKind::kReplyForwarded, 4, 25); // epoch 2
  sampler.flush(t, /*started_at=*/0);

  const LoadSeries s = sampler.finish();
  ASSERT_EQ(s.epochs.size(), 3u);
  ASSERT_EQ(s.epochs[0].nodes.size(), 1u);
  EXPECT_EQ(s.epochs[0].nodes[0].second.scan_hits, 2u);
  EXPECT_EQ(s.epochs[0].nodes[0].second.routes_through, 1u);
  EXPECT_EQ(s.epochs[1].total().cache_hits, 3u);
  EXPECT_EQ(s.epochs[2].total().replies_forwarded, 4u);
}

TEST(EpochSampler, RebasesOntoTheLaterOfClockAndQueryStart) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  // A virtual-time query carries an honest shared-clock start ahead of the
  // harness clock: events land relative to it.
  EpochSampler sampler(10);
  QueryTelemetry t;
  t.record(1, LoadKind::kScanHit, 1, 0);
  sampler.flush(t, /*started_at=*/25);
  // A lockstep query's private engine is pinned near 0: the harness clock
  // wins the max and carries it into the current window.
  sampler.advance_to(12);
  QueryTelemetry u;
  u.record(2, LoadKind::kScanHit, 1, 0);
  sampler.flush(u, /*started_at=*/0);

  const LoadSeries s = sampler.finish();
  ASSERT_EQ(s.epochs.size(), 3u);
  EXPECT_TRUE(s.epochs[0].nodes.empty());
  ASSERT_EQ(s.epochs[1].nodes.size(), 1u); // harness-clock query at t=12
  EXPECT_EQ(s.epochs[1].nodes[0].first, overlay::NodeId{2});
  ASSERT_EQ(s.epochs[2].nodes.size(), 1u); // shared-clock query at t=25
  EXPECT_EQ(s.epochs[2].nodes[0].first, overlay::NodeId{1});
}

TEST(EpochSampler, AdvanceToIsMonotonic) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  EpochSampler sampler(10);
  sampler.advance_to(20);
  sampler.advance_to(5); // ignored: the clock never moves backwards
  EXPECT_EQ(sampler.now(), sim::Time{20});
  sampler.record_now(7, LoadKind::kPublish, 2);
  const LoadSeries s = sampler.finish();
  ASSERT_EQ(s.epochs.size(), 3u);
  EXPECT_EQ(s.epochs[2].total().publishes, 2u);
}

TEST(EpochSampler, FinishMaterializesContiguousEpochs) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  EpochSampler sampler(10);
  QueryTelemetry t;
  t.record(1, LoadKind::kScanHit, 1, 0);  // epoch 0
  t.record(1, LoadKind::kScanHit, 1, 35); // epoch 3
  sampler.flush(t, 0);
  const LoadSeries s = sampler.finish();
  ASSERT_EQ(s.epochs.size(), 4u);
  for (std::uint64_t e = 0; e < 4; ++e) {
    EXPECT_EQ(s.epochs[e].epoch, e);
    EXPECT_EQ(s.epochs[e].start, sim::Time{e * 10});
    EXPECT_EQ(s.epochs[e].end, sim::Time{e * 10 + 10});
  }
  EXPECT_TRUE(s.epochs[1].nodes.empty()); // quiet epochs appear, empty
  EXPECT_TRUE(s.epochs[2].nodes.empty());
}

TEST(EpochSampler, FreshSamplerFinishesHonestlyEmpty) {
  EpochSampler sampler(10);
  const LoadSeries s = sampler.finish();
  EXPECT_TRUE(s.epochs.empty());
  EXPECT_EQ(s.epoch_ticks, sim::Time{10});
}

TEST(EpochSampler, FinishIsRepeatableAndKeepsAccumulating) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  EpochSampler sampler(10);
  sampler.record_now(1, LoadKind::kScanHit, 3);
  const LoadSeries first = sampler.finish();
  const LoadSeries again = sampler.finish();
  ASSERT_EQ(first.epochs.size(), again.epochs.size());
  EXPECT_EQ(first.epochs[0].total().total(), again.epochs[0].total().total());

  sampler.record_now(1, LoadKind::kScanHit, 2);
  const LoadSeries more = sampler.finish();
  EXPECT_EQ(more.epochs[0].total().scan_hits, 5u); // cumulative, not reset
}

TEST(EpochSampler, SnapshotsCounterDeltasAtEpochBoundaries) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  Registry reg;
  reg.counter("pre").add(5); // history before attach: excluded by baseline
  EpochSampler sampler(10, &reg);
  reg.counter("a").add(3);
  sampler.advance_to(10); // closes epoch 0
  reg.counter("a").add(4);
  sampler.advance_to(30); // closes epochs 1 and 2 in one jump
  reg.counter("b").add(5);

  const LoadSeries s = sampler.finish(); // residual lands on epoch 3
  ASSERT_EQ(s.epochs.size(), 4u);
  ASSERT_EQ(s.epochs[0].counter_deltas.size(), 1u);
  EXPECT_EQ(s.epochs[0].counter_deltas[0].name, "a");
  EXPECT_EQ(s.epochs[0].counter_deltas[0].value, 3u);
  // A multi-epoch jump puts the accumulated delta on the FIRST epoch
  // closed; the rest record empty windows.
  ASSERT_EQ(s.epochs[1].counter_deltas.size(), 1u);
  EXPECT_EQ(s.epochs[1].counter_deltas[0].value, 4u);
  EXPECT_TRUE(s.epochs[2].counter_deltas.empty());
  ASSERT_EQ(s.epochs[3].counter_deltas.size(), 1u);
  EXPECT_EQ(s.epochs[3].counter_deltas[0].name, "b");
}

// --- HotspotDetector ------------------------------------------------------

EpochSample sample_at(std::uint64_t epoch,
                      std::initializer_list<std::pair<int, std::uint64_t>>
                          loads) {
  EpochSample s;
  s.epoch = epoch;
  for (const auto& [node, load] : loads) {
    LoadVector v;
    v.scan_hits = load;
    s.nodes.emplace_back(overlay::NodeId{static_cast<unsigned>(node)}, v);
  }
  return s;
}

HotspotConfig test_config() {
  HotspotConfig cfg;
  cfg.alpha = 0.5;
  cfg.onset_factor = 3.0;
  cfg.clear_factor = 1.5;
  cfg.min_load = 10.0;
  return cfg;
}

TEST(HotspotDetector, OnsetFreezeClearLifecycle) {
  Registry reg;
  HotspotDetector detector(test_config(), &reg);
  EXPECT_TRUE(detector.observe(sample_at(0, {{1, 4}})).empty()); // hum
  EXPECT_TRUE(detector.observe(sample_at(1, {{1, 4}})).empty()); // baseline 3
  const auto onset = detector.observe(sample_at(2, {{1, 40}}));
  ASSERT_EQ(onset.size(), 1u);
  EXPECT_EQ(onset[0].kind, HotspotEvent::Kind::kOnset);
  EXPECT_DOUBLE_EQ(onset[0].load, 40.0);
  EXPECT_DOUBLE_EQ(onset[0].baseline, 3.0);
  EXPECT_EQ(detector.active(), 1u);
  // Baseline frozen while hot: a second hot window re-fires nothing, and
  // the eventual clear still compares against the pre-crowd level.
  EXPECT_TRUE(detector.observe(sample_at(3, {{1, 40}})).empty());
  const auto clear = detector.observe(sample_at(4, {{1, 4}}));
  ASSERT_EQ(clear.size(), 1u);
  EXPECT_EQ(clear[0].kind, HotspotEvent::Kind::kClear);
  EXPECT_DOUBLE_EQ(clear[0].baseline, 3.0);
  EXPECT_EQ(detector.active(), 0u);
  ASSERT_EQ(detector.events().size(), 2u);

  if constexpr (kEnabled) {
    EXPECT_EQ(reg.counter("squid.balance.hotspot.onsets").value(), 1u);
    EXPECT_EQ(reg.counter("squid.balance.hotspot.clears").value(), 1u);
    EXPECT_DOUBLE_EQ(reg.gauge("squid.balance.hotspot.active").value(), 0.0);
  }
}

TEST(HotspotDetector, AbsentHotNodeClearsAtLoadZero) {
  HotspotDetector detector(test_config());
  ASSERT_EQ(detector.observe(sample_at(0, {{1, 40}})).size(), 1u);
  // Node 1 vanishes from the next window entirely: judged at load 0.
  const auto fired = detector.observe(sample_at(1, {{2, 3}}));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, HotspotEvent::Kind::kClear);
  EXPECT_EQ(fired[0].node, overlay::NodeId{1});
  EXPECT_DOUBLE_EQ(fired[0].load, 0.0);
}

TEST(HotspotDetector, MinLoadFloorSuppressesIdleNoise) {
  HotspotDetector detector(test_config());
  // A fresh node's baseline is 0, so the ratio test alone would fire on any
  // load at all; the absolute floor is what filters the idle-ring noise.
  EXPECT_TRUE(detector.observe(sample_at(0, {{1, 9}})).empty());
  EXPECT_EQ(detector.observe(sample_at(1, {{2, 10}})).size(), 1u);
}

TEST(HotspotDetector, TopHotIsDeterministicUnderTies) {
  HotspotDetector detector(test_config());
  (void)detector.observe(sample_at(0, {{3, 30}, {1, 30}, {2, 10}}));
  const auto top = detector.top_hot(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, overlay::NodeId{1}); // ties break by node id
  EXPECT_EQ(top[1].node, overlay::NodeId{3});
  EXPECT_DOUBLE_EQ(top[0].load, 30.0);
  EXPECT_TRUE(top[0].hot);
}

TEST(HotspotDetector, DetectionLatencyMeasuresFirstOnsetAtOrAfter) {
  HotspotDetector detector(test_config());
  EXPECT_FALSE(detector.detection_latency(0).has_value());
  (void)detector.observe(sample_at(0, {{1, 2}}));
  (void)detector.observe(sample_at(1, {{1, 2}}));
  (void)detector.observe(sample_at(2, {{1, 50}})); // onset at epoch 2
  EXPECT_EQ(detector.detection_latency(0), std::uint64_t{2});
  EXPECT_EQ(detector.detection_latency(2), std::uint64_t{0});
  EXPECT_FALSE(detector.detection_latency(3).has_value());
}

// --- Exporters ------------------------------------------------------------

/// Two epochs over a 2-bit ring: nodes 1 and 3 split epoch 0 evenly, node 1
/// alone carries epoch 1. Position = node / 2^id_bits.
LoadSeries tiny_series() {
  LoadSeries s;
  s.epoch_ticks = 4;
  s.id_bits = 2;
  EpochSample e0;
  e0.epoch = 0;
  e0.start = 0;
  e0.end = 4;
  LoadVector a;
  a.scan_hits = 2;
  a.routes_through = 1;
  LoadVector b;
  b.publishes = 3;
  e0.nodes.emplace_back(overlay::NodeId{1}, a);
  e0.nodes.emplace_back(overlay::NodeId{3}, b);
  e0.counter_deltas.push_back({"squid.test.moved", 7});
  EpochSample e1;
  e1.epoch = 1;
  e1.start = 4;
  e1.end = 8;
  LoadVector c;
  c.cache_hits = 6;
  e1.nodes.emplace_back(overlay::NodeId{1}, c);
  s.epochs.push_back(std::move(e0));
  s.epochs.push_back(std::move(e1));
  return s;
}

/// Structural JSON check: braces/brackets balance outside string literals.
bool balanced_json(const std::string& text) {
  int depth = 0;
  bool in_string = false, escape = false;
  for (const char c : text) {
    if (escape) {
      escape = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escape = true;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size()))
    ++n;
  return n;
}

TEST(LoadExport, HeatmapCsvGolden) {
  std::ostringstream out;
  write_heatmap_csv(tiny_series(), out);
  EXPECT_EQ(out.str(),
            "epoch,node,position,scan_hits,routes_through,publishes,retracts,"
            "cache_hits,replies_forwarded,total\n"
            "0,0x1,0.25,2,1,0,0,0,0,3\n"
            "0,0x3,0.75,0,0,3,0,0,0,3\n"
            "1,0x1,0.25,0,0,0,0,6,0,6\n");
}

TEST(LoadExport, HeatmapJsonStructureRoundTrips) {
  std::ostringstream out;
  write_heatmap_json(tiny_series(), out);
  const std::string json = out.str();
  EXPECT_TRUE(balanced_json(json)) << json;
  EXPECT_NE(json.find("\"epoch_ticks\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"id_bits\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"node\": \"0x3\", \"position\": 0.75"),
            std::string::npos);
  EXPECT_NE(json.find("\"total\": 6"), std::string::npos);
}

TEST(LoadExport, DeriveImbalanceJudgesEveryKnownNodeEveryEpoch) {
  const auto rows = derive_imbalance(tiny_series());
  ASSERT_EQ(rows.size(), 2u);
  // Epoch 0: both nodes carry 3 — perfectly balanced.
  EXPECT_DOUBLE_EQ(rows[0].total, 6.0);
  EXPECT_EQ(rows[0].nodes, 2u);
  EXPECT_DOUBLE_EQ(rows[0].gini, 0.0);
  EXPECT_DOUBLE_EQ(rows[0].cv, 0.0);
  EXPECT_DOUBLE_EQ(rows[0].max_over_mean, 1.0);
  // Epoch 1: node 3 went idle but still counts as a zero sample — that
  // zero is exactly what moves the imbalance.
  EXPECT_DOUBLE_EQ(rows[1].total, 6.0);
  EXPECT_EQ(rows[1].nodes, 1u);
  EXPECT_GT(rows[1].gini, 0.0);
  EXPECT_DOUBLE_EQ(rows[1].max_over_mean, 2.0);
}

TEST(LoadExport, SeriesCsvHeaderAndRowPerEpoch) {
  std::ostringstream out;
  write_series_csv(tiny_series(), out);
  const std::string csv = out.str();
  EXPECT_EQ(count_occurrences(csv, "\n"), 3u); // header + 2 epochs
  EXPECT_EQ(csv.rfind("epoch,total,nodes,gini,cv,max_over_mean,p99_over_mean",
                      0),
            0u);
  EXPECT_NE(csv.find("\n0,6,2,0,0,1,1\n"), std::string::npos);
}

TEST(LoadExport, SeriesJsonCarriesTheCounterDeltas) {
  std::ostringstream out;
  write_series_json(tiny_series(), out);
  const std::string json = out.str();
  EXPECT_TRUE(balanced_json(json)) << json;
  EXPECT_NE(json.find("\"squid.test.moved\": 7"), std::string::npos);
}

TEST(LoadExport, PerfettoTracksCoverEveryNodeEveryEpoch) {
  std::vector<HotspotEvent> events;
  events.push_back(
      {HotspotEvent::Kind::kOnset, /*epoch=*/1, overlay::NodeId{1}, 6.0, 1.5});
  std::ostringstream out;
  write_load_perfetto(tiny_series(), events, out);
  const std::string json = out.str();
  EXPECT_TRUE(balanced_json(json)) << json;
  // 2 nodes x 2 epochs of per-node counters + 2 gini samples: explicit
  // zeros keep a node's gap from rendering as a held value.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"C\""), 6u);
  EXPECT_EQ(count_occurrences(json, "\"load\":0}"), 1u); // node 3, epoch 1
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("hotspot.onset"), std::string::npos);
  // Same 1-tick = 1ms scale as the span traces: epoch 1 starts at tick 4.
  EXPECT_NE(json.find("\"ts\":4000"), std::string::npos);
}

TEST(LoadExport, EmptySeriesExportsAreWellFormed) {
  const LoadSeries empty;
  std::ostringstream heat, heat_json, series, series_json, perfetto;
  write_heatmap_csv(empty, heat);
  EXPECT_EQ(count_occurrences(heat.str(), "\n"), 1u); // header only
  write_heatmap_json(empty, heat_json);
  EXPECT_TRUE(balanced_json(heat_json.str()));
  write_series_csv(empty, series);
  EXPECT_EQ(count_occurrences(series.str(), "\n"), 1u);
  write_series_json(empty, series_json);
  EXPECT_TRUE(balanced_json(series_json.str()));
  write_load_perfetto(empty, {}, perfetto);
  EXPECT_TRUE(balanced_json(perfetto.str()));
}

TEST(LoadExport, DumpPicksTheFormatByExtension) {
  const LoadSeries series = tiny_series();
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(dump_heatmap(series, dir + "heatmap.json"));
  ASSERT_TRUE(dump_heatmap(series, dir + "heatmap.csv"));
  ASSERT_TRUE(dump_series(series, dir + "series.json"));
  ASSERT_TRUE(dump_series(series, dir + "series.csv"));
  const auto starts_with = [](const std::string& path, char c) {
    std::ifstream in(path);
    char first = '\0';
    in.get(first);
    return first == c;
  };
  EXPECT_TRUE(starts_with(dir + "heatmap.json", '{'));
  EXPECT_TRUE(starts_with(dir + "heatmap.csv", 'e'));
  EXPECT_TRUE(starts_with(dir + "series.json", '{'));
  EXPECT_TRUE(starts_with(dir + "series.csv", 'e'));
  EXPECT_FALSE(dump_heatmap(series, dir + "no/such/dir/x.csv"));
}

} // namespace
} // namespace squid::obs
