// The telemetry pipeline's bit-transparency lock (DESIGN.md 4h).
//
// Attaching an EpochSampler (and running the HotspotDetector over what it
// collects) must be invisible to query execution: on twin systems — same
// topology, same data, same config — one with sampling on and one with it
// off, every query must agree bit-for-bit:
//   - the element sequence, in arrival order,
//   - every QueryStats field,
//   - the timing DAG, entry by entry,
//   - the trace, as a multiset of spans, and
//   - under faults, the injector's RNG stream draw-for-draw.
// Runs the full differential config matrix across all three delivery
// modes: lockstep query(), virtual-time query_async on a shared engine,
// and the sharded parallel executor at S in {1,2,4} (SQUID_PARALLEL_SHARDS
// overrides), faults off AND on. The sampled twin's series is also checked
// non-empty (with observability compiled in), so the lock is not vacuous.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "squid/core/parallel.hpp"
#include "squid/core/system.hpp"
#include "squid/obs/hotspot.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/obs/telemetry.hpp"
#include "squid/obs/trace.hpp"
#include "squid/sim/engine.hpp"
#include "squid/sim/fault.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

using Config = std::tuple<std::string, unsigned, bool, bool>;
// curve, finger_base, aggregate, cache

class TelemetryDifferential : public ::testing::TestWithParam<Config> {};

std::vector<unsigned> shard_counts() {
  const char* env = std::getenv("SQUID_PARALLEL_SHARDS");
  if (env == nullptr || *env == '\0') return {1, 2, 4};
  std::vector<unsigned> out;
  unsigned current = 0;
  bool any = false;
  for (const char* p = env;; ++p) {
    if (*p >= '0' && *p <= '9') {
      current = current * 10 + static_cast<unsigned>(*p - '0');
      any = true;
    } else {
      if (any && current > 0) out.push_back(current);
      current = 0;
      any = false;
      if (*p == '\0') break;
    }
  }
  return out.empty() ? std::vector<unsigned>{1, 2, 4} : out;
}

struct TwinWorld {
  std::unique_ptr<SquidSystem> sampled; ///< runs with telemetry attached
  std::unique_ptr<SquidSystem> bare;    ///< identical, no sampler
};

TwinWorld make_world(const Config& param, bool traced) {
  const auto& [curve, finger_base, aggregate, cache] = param;
  SquidConfig config;
  config.curve = curve;
  config.finger_base = finger_base;
  config.aggregate_subclusters = aggregate;
  config.cache_cluster_owners = cache;
  config.trace_queries = traced;

  const char letters[] = "abcde";
  const keyword::KeywordSpace space(
      {keyword::StringCodec(letters, 3), keyword::StringCodec(letters, 3)});
  TwinWorld world;
  world.sampled = std::make_unique<SquidSystem>(space, config);
  world.bare = std::make_unique<SquidSystem>(space, config);

  Rng rng_a(0xd1f ^ finger_base), rng_b(0xd1f ^ finger_base);
  world.sampled->build_network(35, rng_a);
  world.bare->build_network(35, rng_b);

  Rng rng(0xbeef);
  for (int i = 0; i < 400; ++i) {
    std::string a, b;
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      a.push_back(letters[rng.below(5)]);
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      b.push_back(letters[rng.below(5)]);
    const DataElement e{"e" + std::to_string(i), {a, b}};
    world.sampled->publish(e);
    world.bare->publish(e);
  }
  return world;
}

keyword::Query random_query(Rng& rng) {
  const char letters[] = "abcde";
  keyword::Query q;
  for (int dim = 0; dim < 2; ++dim) {
    const auto kind = rng.below(3);
    if (kind == 0) {
      q.terms.push_back(keyword::Any{});
    } else {
      std::string w;
      for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
        w.push_back(letters[rng.below(5)]);
      if (kind == 1) {
        q.terms.push_back(keyword::Whole{w});
      } else {
        q.terms.push_back(keyword::Prefix{w});
      }
    }
  }
  return q;
}

std::vector<std::string> names_in_order(const QueryResult& r) {
  std::vector<std::string> names;
  for (const auto& e : r.elements) names.push_back(e.name);
  return names;
}

#if SQUID_OBS_ENABLED
/// Order-independent span fingerprint: everything except the indices that
/// depend on record order (parent / event / path slots).
using SpanKey =
    std::tuple<obs::SpanKind, overlay::NodeId, unsigned, sim::Time, sim::Time,
               std::uint32_t, std::uint32_t, std::uint32_t, u128, u128,
               std::uint64_t, std::uint64_t, std::uint64_t>;

std::vector<SpanKey> span_multiset(const obs::Trace& trace) {
  std::vector<SpanKey> keys;
  keys.reserve(trace.spans.size());
  for (const obs::Span& s : trace.spans) {
    keys.emplace_back(s.kind, s.node, s.level, s.start, s.end, s.hops,
                      s.messages, s.batch, s.range_lo, s.range_hi,
                      s.keys_scanned, s.keys_matched, s.matches);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}
#endif

void expect_identical(const QueryResult& sampled, const QueryResult& bare,
                      const std::string& context) {
  EXPECT_EQ(names_in_order(sampled), names_in_order(bare)) << context;
  EXPECT_EQ(sampled.complete, bare.complete) << context;
  EXPECT_EQ(sampled.stats.matches, bare.stats.matches) << context;
  EXPECT_EQ(sampled.stats.routing_nodes, bare.stats.routing_nodes) << context;
  EXPECT_EQ(sampled.stats.processing_nodes, bare.stats.processing_nodes)
      << context;
  EXPECT_EQ(sampled.stats.data_nodes, bare.stats.data_nodes) << context;
  EXPECT_EQ(sampled.stats.messages, bare.stats.messages) << context;
  EXPECT_EQ(sampled.stats.critical_path_hops, bare.stats.critical_path_hops)
      << context;
  EXPECT_EQ(sampled.stats.retries, bare.stats.retries) << context;
  EXPECT_EQ(sampled.stats.failed_clusters, bare.stats.failed_clusters)
      << context;
  EXPECT_EQ(sampled.stats.bytes_shipped, bare.stats.bytes_shipped) << context;
  EXPECT_EQ(sampled.stats.reply_messages, bare.stats.reply_messages)
      << context;
  ASSERT_EQ(sampled.timing.size(), bare.timing.size()) << context;
  for (std::size_t i = 0; i < sampled.timing.size(); ++i) {
    EXPECT_EQ(sampled.timing[i].parent, bare.timing[i].parent)
        << context << " timing " << i;
    EXPECT_EQ(sampled.timing[i].hops, bare.timing[i].hops)
        << context << " timing " << i;
  }
#if SQUID_OBS_ENABLED
  ASSERT_EQ(sampled.trace != nullptr, bare.trace != nullptr) << context;
  if (sampled.trace) {
    EXPECT_EQ(span_multiset(*sampled.trace), span_multiset(*bare.trace))
        << context;
  }
#endif
}

/// Total load the sampler collected, summed over the whole series.
std::uint64_t collected_load(obs::EpochSampler& sampler) {
  std::uint64_t total = 0;
  for (const auto& epoch : sampler.finish().epochs)
    total += epoch.total().total();
  return total;
}

TEST_P(TelemetryDifferential, LockstepQueriesAreUnperturbedBySampling) {
  TwinWorld world = make_world(GetParam(), /*traced=*/obs::kEnabled);
  obs::EpochSampler sampler(32);
  world.sampled->set_telemetry(&sampler);

  Rng rng(0x7e1e);
  for (int trial = 0; trial < 30; ++trial) {
    const keyword::Query q = random_query(rng);
    const auto origin = world.sampled->ring().random_node(rng);
    const std::string context =
        keyword::to_string(q) + " trial " + std::to_string(trial);
    expect_identical(world.sampled->query(q, origin),
                     world.bare->query(q, origin), context);
    // Harness clock ticks between queries, crossing epoch boundaries.
    sampler.advance_to(static_cast<sim::Time>(trial + 1) * 8);
  }
  world.sampled->set_telemetry(nullptr);

  // The lock must not be vacuous: with observability compiled in, the
  // sampled twin really collected per-node load, and the detector consumes
  // it without touching the systems at all.
  if constexpr (obs::kEnabled) {
    EXPECT_GT(collected_load(sampler), 0u);
    obs::HotspotDetector detector;
    detector.observe_all(sampler.finish());
  } else {
    EXPECT_EQ(collected_load(sampler), 0u);
  }
}

TEST_P(TelemetryDifferential, VirtualTimeQueriesAreUnperturbedBySampling) {
  TwinWorld world = make_world(GetParam(), /*traced=*/obs::kEnabled);
  const bool cache = std::get<3>(GetParam());
  obs::EpochSampler sampler(16);
  world.sampled->set_telemetry(&sampler);

  Rng rng(0xa5c1);
  std::vector<keyword::Query> queries;
  std::vector<overlay::NodeId> origins;
  for (int i = 0; i < 8; ++i) {
    queries.push_back(random_query(rng));
    origins.push_back(world.sampled->ring().random_node(rng));
  }
  // With the owner cache on, query_async allows one in-flight query at a
  // time (single-writer cache); interleave only in the cache-off configs.
  const std::size_t batch = cache ? 1 : queries.size();
  for (std::size_t begin = 0; begin < queries.size(); begin += batch) {
    const std::size_t end = std::min(begin + batch, queries.size());
    sim::Engine sampled_engine, bare_engine;
    std::vector<QueryHandle> sampled_handles, bare_handles;
    for (std::size_t i = begin; i < end; ++i) {
      sampled_handles.push_back(
          world.sampled->query_async(queries[i], origins[i], sampled_engine));
      bare_handles.push_back(
          world.bare->query_async(queries[i], origins[i], bare_engine));
    }
    sampled_engine.run();
    bare_engine.run();
    for (std::size_t i = 0; i < sampled_handles.size(); ++i) {
      ASSERT_TRUE(sampled_handles[i].ready());
      ASSERT_TRUE(bare_handles[i].ready());
      expect_identical(sampled_handles[i].result(), bare_handles[i].result(),
                       "async query " + std::to_string(begin + i));
    }
    // Safe point between engine drains.
    sampler.advance_to(sampler.now() + 16);
  }
  world.sampled->set_telemetry(nullptr);
  if constexpr (obs::kEnabled) {
    EXPECT_GT(collected_load(sampler), 0u);
  }
}

TEST_P(TelemetryDifferential, ParallelBatchesAreUnperturbedBySampling) {
  for (const unsigned shards : shard_counts()) {
    // A fresh twin per shard count: the owner cache, when on, couples runs.
    TwinWorld world = make_world(GetParam(), /*traced=*/obs::kEnabled);
    obs::EpochSampler sampler(32);
    world.sampled->set_telemetry(&sampler);

    Rng rng(0x9ba7 ^ shards);
    std::vector<ParallelQuerySpec> specs;
    for (int i = 0; i < 16; ++i) {
      ParallelQuerySpec spec;
      spec.query = random_query(rng);
      spec.origin = world.sampled->ring().random_node(rng);
      specs.push_back(std::move(spec));
    }
    ParallelOptions opts;
    opts.shards = shards;
    const ParallelRun sampled_run = world.sampled->query_parallel(specs, opts);
    const ParallelRun bare_run = world.bare->query_parallel(specs, opts);
    ASSERT_EQ(sampled_run.results.size(), specs.size());
    ASSERT_EQ(bare_run.results.size(), specs.size());
    for (std::size_t k = 0; k < specs.size(); ++k) {
      expect_identical(sampled_run.results[k], bare_run.results[k],
                       "S=" + std::to_string(shards) + " query " +
                           std::to_string(k));
    }
    // advance_to only between batches — never while shards are in flight.
    sampler.advance_to(64);
    world.sampled->set_telemetry(nullptr);
    if constexpr (obs::kEnabled) {
      EXPECT_GT(collected_load(sampler), 0u);
    }
  }
}

TEST_P(TelemetryDifferential, FaultedQueriesKeepTheInjectorStreamIdentical) {
  TwinWorld world = make_world(GetParam(), /*traced=*/obs::kEnabled);
  obs::EpochSampler sampler(32);
  world.sampled->set_telemetry(&sampler);

  sim::FaultPlan plan;
  plan.seed = 0x5eed;
  plan.drop_probability = 0.06;
  plan.delay_probability = 0.15;
  plan.max_delay = 3;
  plan.duplicate_probability = 0.08;
  sim::FaultInjector sampled_injector(plan);
  sim::FaultInjector bare_injector(plan);
  world.sampled->set_fault_injector(&sampled_injector);
  world.bare->set_fault_injector(&bare_injector);

  Rng rng(0xfa17);
  for (int trial = 0; trial < 30; ++trial) {
    const keyword::Query q = random_query(rng);
    const auto origin = world.sampled->ring().random_node(rng);
    const std::string context =
        keyword::to_string(q) + " faulted trial " + std::to_string(trial);
    expect_identical(world.sampled->query(q, origin),
                     world.bare->query(q, origin), context);
    // The strongest invariant: recording sites draw no RNG, so both twins
    // consume the injector's stream identically, draw for draw.
    ASSERT_EQ(sampled_injector.rng_draws(), bare_injector.rng_draws())
        << context;
    EXPECT_EQ(sampled_injector.dropped(), bare_injector.dropped()) << context;
    EXPECT_EQ(sampled_injector.delayed(), bare_injector.delayed()) << context;
    EXPECT_EQ(sampled_injector.duplicated(), bare_injector.duplicated())
        << context;
    sampler.advance_to(static_cast<sim::Time>(trial + 1) * 8);
  }
  EXPECT_GT(sampled_injector.rng_draws(), 0u);
  world.sampled->set_telemetry(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TelemetryDifferential,
    ::testing::Values(Config{"hilbert", 2, true, false},
                      Config{"hilbert", 2, false, false},
                      Config{"hilbert", 2, true, true},
                      Config{"hilbert", 8, true, false},
                      Config{"hilbert", 8, true, true},
                      Config{"zorder", 2, true, false},
                      Config{"zorder", 4, false, true},
                      Config{"gray", 2, true, false},
                      Config{"gray", 16, true, true}),
    [](const auto& info) {
      return std::get<0>(info.param) + "_b" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_agg" : "_noagg") +
             (std::get<3>(info.param) ? "_cache" : "_nocache");
    });

} // namespace
} // namespace squid::core
