// The observability contract (DESIGN.md 4c): the per-query trace is a
// lossless superset of the legacy QueryStats accounting. For every engine
// configuration of the differential matrix, random queries must satisfy
//   derive_stats(*result.trace) == result.stats   (bit-identical)
// and tracing must never perturb the query itself: a traced system and an
// untraced twin produce identical stats on identical workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "squid/core/system.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/obs/trace.hpp"
#include "squid/util/rng.hpp"

namespace squid::core {
namespace {

using Config = std::tuple<std::string, unsigned, bool, bool>;
// curve, finger_base, aggregate, cache

class TraceDifferential : public ::testing::TestWithParam<Config> {};

void expect_stats_identical(const QueryStats& derived, const QueryStats& legacy,
                            const std::string& context) {
  EXPECT_EQ(derived.matches, legacy.matches) << context;
  EXPECT_EQ(derived.routing_nodes, legacy.routing_nodes) << context;
  EXPECT_EQ(derived.processing_nodes, legacy.processing_nodes) << context;
  EXPECT_EQ(derived.data_nodes, legacy.data_nodes) << context;
  EXPECT_EQ(derived.messages, legacy.messages) << context;
  EXPECT_EQ(derived.critical_path_hops, legacy.critical_path_hops) << context;
  EXPECT_EQ(derived.retries, legacy.retries) << context;
  EXPECT_EQ(derived.failed_clusters, legacy.failed_clusters) << context;
}

void expect_well_formed(const obs::Trace& trace, const std::string& context) {
  ASSERT_FALSE(trace.spans.empty()) << context;
  EXPECT_EQ(trace.spans.front().kind, obs::SpanKind::kQuery) << context;
  EXPECT_EQ(trace.spans.front().parent, -1) << context;
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const obs::Span& span = trace.spans[i];
    if (i > 0) {
      // Parents are recorded before their children, and only the first
      // span is a root: the spans form a single tree.
      ASSERT_GE(span.parent, 0) << context << " span " << i;
      ASSERT_LT(static_cast<std::size_t>(span.parent), i)
          << context << " span " << i;
    }
    EXPECT_LE(span.start, span.end) << context << " span " << i;
    EXPECT_LE(span.path_begin, span.path_end) << context << " span " << i;
    EXPECT_LE(span.path_end, trace.nodes.size()) << context << " span " << i;
    // Every span executes under a real timing event.
    EXPECT_GE(span.event, 0) << context << " span " << i;
  }
}

struct TracedWorld {
  std::unique_ptr<SquidSystem> traced;
  std::unique_ptr<SquidSystem> plain; ///< identical twin, tracing off
  std::vector<DataElement> all;
};

TracedWorld make_world(const Config& param) {
  const auto& [curve, finger_base, aggregate, cache] = param;
  SquidConfig config;
  config.curve = curve;
  config.finger_base = finger_base;
  config.aggregate_subclusters = aggregate;
  config.cache_cluster_owners = cache;

  TracedWorld world;
  const char letters[] = "abcde";
  const keyword::KeywordSpace space(
      {keyword::StringCodec(letters, 3), keyword::StringCodec(letters, 3)});

  config.trace_queries = true;
  world.traced = std::make_unique<SquidSystem>(space, config);
  config.trace_queries = false;
  world.plain = std::make_unique<SquidSystem>(space, config);

  // Both systems see the exact same network and data: separate rng
  // instances with the same seed keep their streams in lockstep.
  Rng rng_a(0x0b5 ^ finger_base), rng_b(0x0b5 ^ finger_base);
  world.traced->build_network(35, rng_a);
  world.plain->build_network(35, rng_b);

  Rng rng(0xdead);
  for (int i = 0; i < 400; ++i) {
    std::string a, b;
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      a.push_back(letters[rng.below(5)]);
    for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
      b.push_back(letters[rng.below(5)]);
    world.all.push_back(DataElement{"e" + std::to_string(i), {a, b}});
    world.traced->publish(world.all.back());
    world.plain->publish(world.all.back());
  }
  return world;
}

keyword::Query random_query(Rng& rng) {
  const char letters[] = "abcde";
  keyword::Query q;
  for (int dim = 0; dim < 2; ++dim) {
    const auto kind = rng.below(3);
    if (kind == 0) {
      q.terms.push_back(keyword::Any{});
    } else {
      std::string w;
      for (std::uint64_t j = rng.range(1, 3); j-- > 0;)
        w.push_back(letters[rng.below(5)]);
      if (kind == 1) {
        q.terms.push_back(keyword::Whole{w});
      } else {
        q.terms.push_back(keyword::Prefix{w});
      }
    }
  }
  return q;
}

TEST_P(TraceDifferential, DerivedStatsAreBitIdentical) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  TracedWorld world = make_world(GetParam());
  ASSERT_TRUE(world.traced->tracing());
  ASSERT_FALSE(world.plain->tracing());

  Rng rng(0x7ace);
  for (int trial = 0; trial < 40; ++trial) {
    const keyword::Query q = random_query(rng);
    const auto origin = world.traced->ring().random_node(rng);
    const std::string context =
        keyword::to_string(q) + " trial " + std::to_string(trial);

    const auto traced = world.traced->query(q, origin);
    ASSERT_NE(traced.trace, nullptr) << context;
    expect_well_formed(*traced.trace, context);
    expect_stats_identical(obs::derive_stats(*traced.trace), traced.stats,
                           context);

    // Tracing is observation, not interference: the untraced twin agrees
    // on every legacy aggregate and on the result set size.
    const auto plain = world.plain->query(q, origin);
    EXPECT_EQ(plain.trace, nullptr) << context;
    expect_stats_identical(plain.stats, traced.stats, context);
    EXPECT_EQ(plain.elements.size(), traced.elements.size()) << context;
  }
}

TEST_P(TraceDifferential, CentralizedDecompositionIsDerivableToo) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  TracedWorld world = make_world(GetParam());
  Rng rng(0xce27);
  for (int trial = 0; trial < 10; ++trial) {
    const keyword::Query q = random_query(rng);
    const auto origin = world.traced->ring().random_node(rng);
    const std::string context = keyword::to_string(q) + " [centralized]";
    const auto result = world.traced->query_centralized(q, origin);
    ASSERT_NE(result.trace, nullptr) << context;
    expect_well_formed(*result.trace, context);
    expect_stats_identical(obs::derive_stats(*result.trace), result.stats,
                           context);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TraceDifferential,
    ::testing::Values(Config{"hilbert", 2, true, false},
                      Config{"hilbert", 2, false, false},
                      Config{"hilbert", 2, true, true},
                      Config{"hilbert", 8, true, false},
                      Config{"hilbert", 8, true, true},
                      Config{"zorder", 2, true, false},
                      Config{"zorder", 4, false, true},
                      Config{"gray", 2, true, false},
                      Config{"gray", 16, true, true}),
    [](const auto& info) {
      return std::get<0>(info.param) + "_b" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_agg" : "_noagg") +
             (std::get<3>(info.param) ? "_cache" : "_nocache");
    });

TEST(TraceLifecycle, PointQueriesCarryARouteAndAScan) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  SquidConfig config;
  config.trace_queries = true;
  const char letters[] = "abcde";
  SquidSystem sys(
      keyword::KeywordSpace(
          {keyword::StringCodec(letters, 3), keyword::StringCodec(letters, 3)}),
      config);
  Rng rng(42);
  sys.build_network(35, rng);
  sys.publish(DataElement{"hit", {"abc", "de"}});

  keyword::Query q;
  q.terms.push_back(keyword::Whole{"abc"});
  q.terms.push_back(keyword::Whole{"de"});
  const auto result = sys.query(q, sys.ring().random_node(rng));
  EXPECT_EQ(result.stats.matches, 1u);
  ASSERT_NE(result.trace, nullptr);
  const obs::Trace& trace = *result.trace;
  // Point queries skip refinement: root -> route hop -> local scan.
  bool routed = false, scanned = false;
  for (const obs::Span& span : trace.spans) {
    routed |= span.kind == obs::SpanKind::kRouteHop;
    scanned |= span.kind == obs::SpanKind::kLocalScan && span.matches == 1;
  }
  EXPECT_TRUE(routed);
  EXPECT_TRUE(scanned);
  expect_stats_identical(obs::derive_stats(trace), result.stats, "[point]");
}

TEST(TraceLifecycle, RuntimeToggleControlsRecording) {
  const char letters[] = "abcde";
  SquidSystem sys(keyword::KeywordSpace(
      {keyword::StringCodec(letters, 3), keyword::StringCodec(letters, 3)}));
  Rng rng(43);
  sys.build_network(20, rng);
  sys.publish(DataElement{"x", {"ab", "cd"}});

  keyword::Query q;
  q.terms.push_back(keyword::Any{});
  q.terms.push_back(keyword::Any{});
  const auto origin = sys.ring().node_ids().front();

  // Off by default.
  EXPECT_FALSE(sys.tracing());
  EXPECT_EQ(sys.query(q, origin).trace, nullptr);

  sys.set_tracing(true);
  if (obs::kEnabled) {
    ASSERT_TRUE(sys.tracing());
    const auto traced = sys.query(q, origin);
    ASSERT_NE(traced.trace, nullptr);
    EXPECT_GT(traced.trace->spans.size(), 1u);
    // The root span covers the whole critical path on the virtual clock.
    EXPECT_EQ(traced.trace->spans.front().end,
              traced.stats.critical_path_hops);
  } else {
    // Compiled out: the toggle is inert and queries never carry a trace.
    EXPECT_FALSE(sys.tracing());
    EXPECT_EQ(sys.query(q, origin).trace, nullptr);
  }

  sys.set_tracing(false);
  EXPECT_FALSE(sys.tracing());
  EXPECT_EQ(sys.query(q, origin).trace, nullptr);
}

} // namespace
} // namespace squid::core
