// Metrics registry + exporter contracts (DESIGN.md 4c): registration is
// idempotent, handles survive reset(), snapshots are name-sorted, the
// subsystem publishing sites actually publish, and the exporters emit
// structurally sound CSV / JSON.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "squid/core/system.hpp"
#include "squid/obs/export.hpp"
#include "squid/obs/metrics.hpp"
#include "squid/workload/corpus.hpp"

namespace squid::obs {
namespace {

TEST(Metrics, CounterAccumulatesAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  if (kEnabled) {
    EXPECT_EQ(c.value(), 42u);
  } else {
    EXPECT_EQ(c.value(), 0u); // compiled out: increments are dead code
  }
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, HistogramSnapshotIsConsistent) {
  HistogramMetric h(0, 10, 5);
  h.observe(1.0);
  h.observe(3.0);
  h.observe(9.5);
  h.observe(25.0); // clamps into the last bucket
  const auto snap = h.snapshot();
  if (kEnabled) {
    EXPECT_EQ(snap.count, 4u);
    EXPECT_DOUBLE_EQ(snap.sum, 38.5);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 25.0);
  } else {
    EXPECT_EQ(snap.count, 0u); // compiled out: observations are dead code
  }
  ASSERT_EQ(snap.buckets.size(), 5u);
  ASSERT_EQ(snap.bucket_lo.size(), 5u);
  std::uint64_t total = 0;
  for (const auto b : snap.buckets) total += b;
  EXPECT_EQ(total, snap.count); // buckets partition every observation
  EXPECT_DOUBLE_EQ(snap.bucket_lo.front(), 0.0);
  EXPECT_DOUBLE_EQ(snap.bucket_lo.back(), 8.0);

  h.reset();
  const auto zero = h.snapshot();
  EXPECT_EQ(zero.count, 0u);
  EXPECT_DOUBLE_EQ(zero.sum, 0.0);
}

TEST(Metrics, RegistrationIsIdempotent) {
  Registry registry;
  Counter& a = registry.counter("squid.test.counter");
  Counter& b = registry.counter("squid.test.counter");
  EXPECT_EQ(&a, &b); // same name -> same object, handles are cacheable
  Gauge& g1 = registry.gauge("squid.test.gauge");
  Gauge& g2 = registry.gauge("squid.test.gauge");
  EXPECT_EQ(&g1, &g2);
  // First registration's geometry wins; re-registration is a lookup.
  HistogramMetric& h1 = registry.histogram("squid.test.hist", 0, 10, 5);
  HistogramMetric& h2 = registry.histogram("squid.test.hist", 0, 999, 2);
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.snapshot().buckets.size(), 5u);
}

TEST(Metrics, ResetZeroesButKeepsHandlesValid) {
  Registry registry;
  Counter& c = registry.counter("squid.test.resettable");
  Gauge& g = registry.gauge("squid.test.level");
  c.add(7);
  g.set(3.5);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  c.add(1); // the handle still points at the live metric
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  if (kEnabled) EXPECT_EQ(snap.counters.front().value, 1u);
}

TEST(Metrics, SnapshotIsSortedByName) {
  Registry registry;
  registry.counter("squid.z.last");
  registry.counter("squid.a.first");
  registry.counter("squid.m.middle");
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "squid.a.first");
  EXPECT_EQ(snap.counters[1].name, "squid.m.middle");
  EXPECT_EQ(snap.counters[2].name, "squid.z.last");
}

TEST(Metrics, SubsystemsPublishIntoTheGlobalRegistry) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  Registry::global().reset();

  Rng rng(271);
  workload::KeywordCorpus corpus(2, 200, 0.9, rng);
  core::SquidSystem sys(corpus.make_space());
  sys.build_network(40, rng);
  sys.publish_batch(corpus.make_elements(500, rng));
  (void)sys.query(corpus.q1(0, true), sys.ring().random_node(rng));
  sys.stabilize(rng);

  auto& registry = Registry::global();
  EXPECT_GE(registry.counter("squid.system.publishes").value(), 500u);
  EXPECT_GE(registry.counter("squid.ring.joins").value(), 40u);
  EXPECT_GT(registry.counter("squid.ring.routes").value(), 0u);
  EXPECT_GT(registry.counter("squid.ring.stabilize_ops").value(), 0u);
  EXPECT_EQ(registry.counter("squid.query.count").value(), 1u);
  EXPECT_GT(registry.counter("squid.query.messages").value(), 0u);
  const auto hops =
      registry.histogram("squid.query.critical_path_hops", 0, 64, 16)
          .snapshot();
  EXPECT_EQ(hops.count, 1u);
}

Registry::Snapshot sample_snapshot() {
  Registry registry;
  registry.counter("squid.test.requests").add(12);
  registry.gauge("squid.test.load").set(0.5);
  registry.histogram("squid.test.latency", 0, 100, 4).observe(42.0);
  return registry.snapshot();
}

TEST(Exporters, CsvRowsAreWellFormed) {
  std::ostringstream out;
  write_metrics_csv(sample_snapshot(), out);
  const std::string csv = out.str();
  std::istringstream lines(csv);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "kind,name,field,value");
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    ++rows;
    // Every row has exactly four comma-separated fields.
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 3) << line;
  }
  EXPECT_GE(rows, 2u + 4u + 4u); // counter + gauge rows + hist stats+buckets
  if (kEnabled) {
    EXPECT_NE(csv.find("counter,squid.test.requests,value,12"),
              std::string::npos);
    EXPECT_NE(csv.find("histogram,squid.test.latency,count,1"),
              std::string::npos);
  }
  EXPECT_NE(csv.find("bucket_ge_"), std::string::npos);
}

void expect_balanced_json(const std::string& text) {
  // The emitters never put braces/brackets inside strings, so a balance
  // check is a meaningful structural test without a JSON parser.
  long braces = 0, brackets = 0;
  for (const char c : text) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Exporters, MetricsJsonIsBalancedAndNamed) {
  std::ostringstream out;
  write_metrics_json(sample_snapshot(), out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"squid.test.requests\""), std::string::npos);
  EXPECT_NE(json.find("\"squid.test.load\""), std::string::npos);
  EXPECT_NE(json.find("\"squid.test.latency\""), std::string::npos);
}

TEST(Exporters, DumpMetricsPicksFormatByExtension) {
  Registry registry;
  registry.counter("squid.test.dumped").add(3);
  const std::string base = ::testing::TempDir() + "squid_metrics_test";
  const std::string csv_path = base + ".csv";
  const std::string json_path = base + ".json";
  ASSERT_TRUE(dump_metrics(registry, csv_path));
  ASSERT_TRUE(dump_metrics(registry, json_path));
  std::ifstream csv(csv_path), json(json_path);
  std::stringstream csv_text, json_text;
  csv_text << csv.rdbuf();
  json_text << json.rdbuf();
  EXPECT_NE(csv_text.str().find("kind,name,field,value"), std::string::npos);
  EXPECT_EQ(json_text.str().front(), '{');
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
  EXPECT_FALSE(dump_metrics(registry, "/nonexistent-dir/metrics.csv"));
}

core::QueryResult traced_query() {
  core::SquidConfig config;
  config.trace_queries = true;
  Rng rng(272);
  workload::KeywordCorpus corpus(2, 150, 0.9, rng);
  core::SquidSystem sys(corpus.make_space(), config);
  sys.build_network(40, rng);
  sys.publish_batch(corpus.make_elements(600, rng));
  return sys.query(corpus.q1(0, true), sys.ring().random_node(rng));
}

TEST(Exporters, TraceJsonLoadsAsAnEventArray) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  const auto result = traced_query();
  ASSERT_NE(result.trace, nullptr);
  std::ostringstream out;
  write_trace_json(*result.trace, out);
  const std::string json = out.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos); // complete events
  EXPECT_NE(json.find("\"query\""), std::string::npos);    // the root span
  // One complete event per span.
  std::size_t events = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++events;
    pos += 1;
  }
  EXPECT_EQ(events, result.trace->spans.size());
}

TEST(Exporters, SpanTreePrintsEverySpanWithRollups) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  const auto result = traced_query();
  ASSERT_NE(result.trace, nullptr);
  std::ostringstream out;
  print_span_tree(*result.trace, out);
  const std::string tree = out.str();
  EXPECT_NE(tree.find("query"), std::string::npos);
  EXPECT_NE(tree.find("local-scan"), std::string::npos);
  // Every span renders exactly one line with its kind name.
  std::size_t lines = 0;
  for (const char c : tree) lines += c == '\n';
  EXPECT_GE(lines, result.trace->spans.size());
}

} // namespace
} // namespace squid::obs
