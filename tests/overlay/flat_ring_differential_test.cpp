// Differential suite for the flat sorted-array ring membership (DESIGN.md
// 4b): every query the public API answers is replayed against an ordered-set
// oracle — the exact model the seed's std::map<NodeId, ChordNode> storage
// implemented by construction. Any divergence between binary-search rank
// arithmetic (with tombstones and deferred compaction in play) and the
// ordered-set semantics fails here before it can perturb a figure.

#include "squid/overlay/chord.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>
#include <vector>

#include "squid/util/rng.hpp"

namespace squid::overlay {
namespace {

/// Ground-truth successor per the ordered-set model: first member >= key,
/// wrapping to the smallest.
NodeId oracle_successor(const std::set<NodeId>& members, u128 key) {
  auto it = members.lower_bound(key);
  if (it == members.end()) it = members.begin();
  return *it;
}

/// Ground-truth predecessor: last member < key, wrapping to the largest.
NodeId oracle_predecessor(const std::set<NodeId>& members, u128 key) {
  auto it = members.lower_bound(key);
  if (it == members.begin()) it = members.end();
  return *std::prev(it);
}

/// Compare every positional query against the oracle at the members
/// themselves, one past them, and a spread of random probes.
void check_against_oracle(const ChordRing& ring,
                          const std::set<NodeId>& members, Rng& probe_rng) {
  ASSERT_EQ(ring.size(), members.size());
  const std::vector<NodeId> ids = ring.node_ids();
  ASSERT_TRUE(std::equal(ids.begin(), ids.end(), members.begin(),
                         members.end()));
  for (const NodeId id : ids) {
    EXPECT_TRUE(ring.contains(id));
    EXPECT_EQ(ring.successor_of(id), id);
    EXPECT_EQ(ring.node(id).id, id);
  }
  for (int probe = 0; probe < 64; ++probe) {
    const u128 key = probe_rng.below128(ring.id_mask() + 1);
    EXPECT_EQ(ring.successor_of(key), oracle_successor(members, key));
    EXPECT_EQ(ring.predecessor_of(key), oracle_predecessor(members, key));
    EXPECT_EQ(ring.contains(key), members.count(key) != 0);
  }
}

TEST(FlatRingDifferential, ChurnAgainstOrderedSetOracle) {
  Rng rng(77);
  Rng probe_rng(78);
  ChordRing ring(40);
  ring.build(120, rng);
  std::set<NodeId> members;
  for (const NodeId id : ring.node_ids()) members.insert(id);
  check_against_oracle(ring, members, probe_rng);

  // Interleave every mutation the public API offers, verifying after each
  // batch so tombstones and compactions are both exercised mid-stream.
  for (int round = 0; round < 30; ++round) {
    const unsigned op = static_cast<unsigned>(rng.below(5));
    switch (op) {
    case 0: { // exact insert (setup / load-balancer path)
      const NodeId id = ring.random_free_id(rng);
      ring.add_node_exact(id);
      members.insert(id);
      break;
    }
    case 1: { // protocol join through routing
      const NodeId id = ring.random_free_id(rng);
      const NodeId bootstrap = ring.random_node(rng);
      const RouteResult r = ring.join(id, bootstrap);
      ASSERT_TRUE(r.ok);
      members.insert(id);
      break;
    }
    case 2: { // graceful leave
      if (members.size() <= 4) break;
      const NodeId id = ring.random_node(rng);
      ring.leave(id);
      members.erase(id);
      break;
    }
    case 3: { // abrupt failure (leaves stale remote state behind)
      if (members.size() <= 4) break;
      const NodeId id = ring.random_node(rng);
      ring.fail(id);
      members.erase(id);
      break;
    }
    case 4: { // repair then stabilization sweeps
      ring.repair_all();
      ring.stabilize_all(rng, 1);
      break;
    }
    }
    check_against_oracle(ring, members, probe_rng);
  }
}

TEST(FlatRingDifferential, RandomNodeIsKthSmallestLiveId) {
  // The seed drew k = rng.below(size) and advanced a map iterator k steps:
  // random_node must return the k-th smallest live id for the same draw,
  // including while tombstones are pending compaction.
  Rng rng(91);
  ChordRing ring(36);
  ring.build(90, rng);
  for (int round = 0; round < 40; ++round) {
    // Failures tombstone without compacting (until the density threshold),
    // so consecutive draws run against a dirty array.
    if (ring.size() > 8) ring.fail(ring.random_node(rng));
    const std::vector<NodeId> ids = ring.node_ids();
    for (int draw = 0; draw < 16; ++draw) {
      Rng expected_rng = rng; // mirror the stream to predict the pick
      const std::size_t k =
          static_cast<std::size_t>(expected_rng.below(ids.size()));
      EXPECT_EQ(ring.random_node(rng), ids[k]);
    }
  }
}

TEST(FlatRingDifferential, RouteDestinationMatchesGroundTruthOwner) {
  Rng rng(123);
  ChordRing ring(32);
  ring.build(150, rng);
  for (int round = 0; round < 6; ++round) {
    // Churn, then repair: routing correctness is defined on a converged
    // ring; the differential claim is dest == successor_of for any key.
    for (int i = 0; i < 5; ++i) {
      ring.fail(ring.random_node(rng));
      ring.add_node_exact(ring.random_free_id(rng));
    }
    ring.repair_all();
    std::set<NodeId> members;
    for (const NodeId id : ring.node_ids()) members.insert(id);
    for (int probe = 0; probe < 50; ++probe) {
      const u128 key = rng.below128(ring.id_mask() + 1);
      const RouteResult r = ring.route(ring.random_node(rng), key);
      ASSERT_TRUE(r.ok);
      EXPECT_EQ(r.dest, oracle_successor(members, key));
      EXPECT_EQ(r.dest, ring.successor_of(key));
    }
  }
}

TEST(FlatRingDifferential, StabilizationConvergesAfterChurn) {
  Rng rng(55);
  ChordRing ring(32, /*successors=*/8);
  ring.build(80, rng);
  ASSERT_TRUE(ring.ring_consistent());
  // Fail a handful of nodes abruptly; successor lists are deep enough for
  // stabilization alone to reconverge the ring (no oracle repair).
  for (int i = 0; i < 5; ++i) ring.fail(ring.random_node(rng));
  ring.stabilize_all(rng, 6);
  EXPECT_TRUE(ring.ring_consistent());
  // And the repaired ring still matches the ordered-set oracle.
  std::set<NodeId> members;
  for (const NodeId id : ring.node_ids()) members.insert(id);
  Rng probe_rng(56);
  check_against_oracle(ring, members, probe_rng);
}

TEST(FlatRingDifferential, TombstoneHeavyChurnStaysExact) {
  // Push the tombstone machinery hard: alternate bursts of failures (dead
  // entries accumulate, possibly tripping threshold compaction) with single
  // inserts (which compact eagerly), checking positional queries throughout.
  Rng rng(2024);
  Rng probe_rng(2025);
  ChordRing ring(48);
  ring.build(200, rng);
  std::set<NodeId> members;
  for (const NodeId id : ring.node_ids()) members.insert(id);
  for (int round = 0; round < 12; ++round) {
    const std::size_t burst = 1 + rng.below(20);
    for (std::size_t i = 0; i < burst && members.size() > 8; ++i) {
      const NodeId id = ring.random_node(rng);
      ring.fail(id);
      members.erase(id);
      // Check *between* removals: the array is at its dirtiest here.
      EXPECT_EQ(ring.size(), members.size());
      const u128 key = probe_rng.below128(ring.id_mask() + 1);
      EXPECT_EQ(ring.successor_of(key), oracle_successor(members, key));
      EXPECT_EQ(ring.predecessor_of(key), oracle_predecessor(members, key));
    }
    const NodeId fresh = ring.random_free_id(rng);
    ring.add_node_exact(fresh);
    members.insert(fresh);
    check_against_oracle(ring, members, probe_rng);
  }
}

} // namespace
} // namespace squid::overlay
