#include "squid/overlay/can.hpp"

#include <gtest/gtest.h>

#include "squid/util/rng.hpp"

namespace squid::overlay {
namespace {

TEST(Can, SingleZoneCoversEverything) {
  CanOverlay can(2, 6);
  EXPECT_EQ(can.size(), 1u);
  EXPECT_TRUE(can.invariants_hold());
  EXPECT_EQ(can.owner_of({0, 0}), 0u);
  EXPECT_EQ(can.owner_of({63, 63}), 0u);
}

TEST(Can, JoinsPartitionTheTorus) {
  Rng rng(71);
  for (const unsigned dims : {1u, 2u, 3u}) {
    CanOverlay can(dims, 8);
    can.build(100, rng);
    EXPECT_EQ(can.size(), 100u);
    EXPECT_TRUE(can.invariants_hold()) << dims << "D";
  }
}

TEST(Can, OwnerIsUniqueForRandomPoints) {
  Rng rng(72);
  CanOverlay can(2, 10);
  can.build(200, rng);
  for (int i = 0; i < 500; ++i) {
    sfc::Point p{rng.below(1u << 10), rng.below(1u << 10)};
    const auto owner = can.owner_of(p);
    EXPECT_TRUE(can.zone(owner).contains(p));
  }
}

TEST(Can, GreedyRoutingReachesEveryTarget) {
  Rng rng(73);
  CanOverlay can(2, 10);
  can.build(300, rng);
  std::size_t total_hops = 0;
  constexpr int kTrials = 400;
  for (int i = 0; i < kTrials; ++i) {
    sfc::Point p{rng.below(1u << 10), rng.below(1u << 10)};
    const auto r = can.route(can.random_node(rng), p);
    ASSERT_TRUE(r.ok) << "trial " << i;
    EXPECT_EQ(r.dest, can.owner_of(p));
    total_hops += r.hops();
  }
  // CAN path length is Theta(d * n^(1/d)): ~ sqrt(300) in 2D.
  EXPECT_LT(static_cast<double>(total_hops) / kTrials, 4.0 * 17.3);
}

TEST(Can, NeighborsShareFaces) {
  Rng rng(74);
  CanOverlay can(3, 6);
  can.build(120, rng);
  for (CanOverlay::NodeIndex v = 0; v < can.size(); ++v) {
    EXPECT_FALSE(can.neighbors(v).empty());
    EXPECT_FALSE(can.neighbors(v).count(v));
  }
  EXPECT_TRUE(can.invariants_hold());
}

TEST(Can, RejectsBadConfiguration) {
  EXPECT_THROW(CanOverlay(0, 8), std::invalid_argument);
  EXPECT_THROW(CanOverlay(2, 0), std::invalid_argument);
  EXPECT_THROW(CanOverlay(2, 64), std::invalid_argument);
  CanOverlay can(2, 4);
  EXPECT_THROW((void)can.owner_of({1, 2, 3}), std::invalid_argument);
  EXPECT_THROW((void)can.zone(5), std::invalid_argument);
}

} // namespace
} // namespace squid::overlay
