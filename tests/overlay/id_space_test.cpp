#include "squid/overlay/id_space.hpp"

#include <gtest/gtest.h>

namespace squid::overlay {
namespace {

TEST(IdSpace, OpenClosedStraight) {
  EXPECT_TRUE(in_open_closed(2, 8, 5));
  EXPECT_TRUE(in_open_closed(2, 8, 8));
  EXPECT_FALSE(in_open_closed(2, 8, 2));
  EXPECT_FALSE(in_open_closed(2, 8, 9));
  EXPECT_FALSE(in_open_closed(2, 8, 1));
}

TEST(IdSpace, OpenClosedWrapped) {
  EXPECT_TRUE(in_open_closed(8, 2, 9));
  EXPECT_TRUE(in_open_closed(8, 2, 0));
  EXPECT_TRUE(in_open_closed(8, 2, 2));
  EXPECT_FALSE(in_open_closed(8, 2, 8));
  EXPECT_FALSE(in_open_closed(8, 2, 5));
}

TEST(IdSpace, ZeroLengthIntervalIsWholeRing) {
  // Chord convention: (a, a] covers everything — a single node owns all keys.
  EXPECT_TRUE(in_open_closed(5, 5, 0));
  EXPECT_TRUE(in_open_closed(5, 5, 5));
  EXPECT_TRUE(in_open_closed(5, 5, 100));
}

TEST(IdSpace, OpenOpen) {
  EXPECT_TRUE(in_open_open(2, 8, 5));
  EXPECT_FALSE(in_open_open(2, 8, 8));
  EXPECT_FALSE(in_open_open(2, 8, 2));
  EXPECT_TRUE(in_open_open(8, 2, 1));
  EXPECT_FALSE(in_open_open(8, 2, 2));
  // (a, a) is everything except a.
  EXPECT_TRUE(in_open_open(5, 5, 4));
  EXPECT_FALSE(in_open_open(5, 5, 5));
}

TEST(IdSpace, ClosedOpen) {
  EXPECT_TRUE(in_closed_open(2, 8, 2));
  EXPECT_FALSE(in_closed_open(2, 8, 8));
  EXPECT_TRUE(in_closed_open(8, 2, 8));
  EXPECT_TRUE(in_closed_open(8, 2, 0));
  EXPECT_FALSE(in_closed_open(8, 2, 2));
}

TEST(IdSpace, RingDistanceWraps) {
  EXPECT_EQ(ring_distance(3, 7, 4), static_cast<u128>(4));
  EXPECT_EQ(ring_distance(7, 3, 4), static_cast<u128>(12));
  EXPECT_EQ(ring_distance(5, 5, 4), static_cast<u128>(0));
  EXPECT_EQ(ring_distance(15, 0, 4), static_cast<u128>(1));
}

TEST(IdSpace, FingerTargetsWrap) {
  EXPECT_EQ(finger_target(0, 0, 4), static_cast<u128>(1));
  EXPECT_EQ(finger_target(0, 3, 4), static_cast<u128>(8));
  EXPECT_EQ(finger_target(12, 3, 4), static_cast<u128>(4)); // 12+8 mod 16
  EXPECT_EQ(finger_target(15, 0, 4), static_cast<u128>(0));
}

} // namespace
} // namespace squid::overlay
