// k-ary finger tables: base 2 must reproduce classic Chord exactly; larger
// bases must shorten routes while preserving correctness.

#include <gtest/gtest.h>

#include "squid/overlay/chord.hpp"
#include "squid/util/rng.hpp"

namespace squid::overlay {
namespace {

TEST(FingerBase, BaseTwoMatchesClassicChordGeometry) {
  const ChordRing ring(20, 8, 2);
  EXPECT_EQ(ring.finger_count(), 20u);
  for (unsigned k = 0; k < 20; ++k)
    EXPECT_EQ(ring.finger_target_of(5, k),
              finger_target(5, k, 20)); // id + 2^k
}

TEST(FingerBase, OffsetsCoverEveryScaleForLargerBases) {
  const ChordRing ring(16, 8, 4);
  // (4-1) fingers per base-4 digit, 8 digits in 16 bits = 24 fingers.
  EXPECT_EQ(ring.finger_count(), 24u);
  // First few offsets: 1, 2, 3, 4, 8, 12, 16, ...
  EXPECT_EQ(ring.finger_target_of(0, 0), static_cast<NodeId>(1));
  EXPECT_EQ(ring.finger_target_of(0, 1), static_cast<NodeId>(2));
  EXPECT_EQ(ring.finger_target_of(0, 2), static_cast<NodeId>(3));
  EXPECT_EQ(ring.finger_target_of(0, 3), static_cast<NodeId>(4));
  EXPECT_EQ(ring.finger_target_of(0, 4), static_cast<NodeId>(8));
  EXPECT_EQ(ring.finger_target_of(0, 5), static_cast<NodeId>(12));
  EXPECT_EQ(ring.finger_target_of(0, 6), static_cast<NodeId>(16));
}

class FingerBaseRouting : public ::testing::TestWithParam<unsigned> {};

TEST_P(FingerBaseRouting, RoutesCorrectlyAtAnyBase) {
  const unsigned base = GetParam();
  Rng rng(7);
  ChordRing ring(32, 8, base);
  ring.build(500, rng);
  EXPECT_TRUE(ring.ring_consistent());
  for (int trial = 0; trial < 200; ++trial) {
    const u128 key = rng.below128(static_cast<u128>(1) << 32);
    const auto r = ring.route(ring.random_node(rng), key);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.dest, ring.successor_of(key));
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, FingerBaseRouting,
                         ::testing::Values(2u, 3u, 4u, 8u, 16u),
                         [](const auto& info) {
                           return "base" + std::to_string(info.param);
                         });

TEST(FingerBase, LargerBasesShortenRoutes) {
  Rng rng(8);
  const auto mean_hops = [&rng](unsigned base) {
    Rng local(9);
    ChordRing ring(40, 8, base);
    ring.build(2000, local);
    double total = 0;
    constexpr int kTrials = 500;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto r = ring.route(ring.random_node(local),
                                local.below128(static_cast<u128>(1) << 40));
      total += static_cast<double>(r.hops());
    }
    return total / kTrials;
  };
  (void)rng;
  const double base2 = mean_hops(2);
  const double base8 = mean_hops(8);
  // Expected means are (b-1)/b * log_b N: ~5.5 hops at base 2 vs ~3.2 at
  // base 8 for N=2000 — about a 1.6x reduction. Require a clear >1.25x.
  EXPECT_LT(base8 * 1.25, base2);
}

TEST(FingerBase, SurvivesChurnLikeClassicChord) {
  Rng rng(10);
  ChordRing ring(32, 8, 8);
  ring.build(200, rng);
  for (int i = 0; i < 40; ++i) ring.fail(ring.random_node(rng));
  ring.stabilize_all(rng, 3);
  EXPECT_TRUE(ring.ring_consistent());
}

TEST(FingerBase, RejectsDegenerateBase) {
  EXPECT_THROW(ChordRing(16, 8, 0), std::invalid_argument);
  EXPECT_THROW(ChordRing(16, 8, 1), std::invalid_argument);
}

} // namespace
} // namespace squid::overlay
