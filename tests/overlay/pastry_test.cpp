#include "squid/overlay/pastry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "squid/util/rng.hpp"

namespace squid::overlay {
namespace {

TEST(Pastry, DigitDecomposition) {
  const PastryOverlay pastry(4, 16);
  EXPECT_EQ(pastry.digits(), 32u);
  const u128 id = make_u128(0xfedcba9876543210ull, 0x0123456789abcdefull);
  const auto digits = pastry.digits_of(id);
  ASSERT_EQ(digits.size(), 32u);
  EXPECT_EQ(digits[0], 0xfu);
  EXPECT_EQ(digits[1], 0xeu);
  EXPECT_EQ(digits[16], 0x0u);
  EXPECT_EQ(digits[31], 0xfu);
}

TEST(Pastry, SharedPrefixCountsDigits) {
  const PastryOverlay pastry(4, 16);
  const u128 a = make_u128(0xabcd000000000000ull, 0);
  const u128 b = make_u128(0xabc1000000000000ull, 0);
  EXPECT_EQ(pastry.shared_prefix(a, b), 3u); // a, b, c agree; d vs 1 differ
  EXPECT_EQ(pastry.shared_prefix(a, a), 32u);
  EXPECT_EQ(pastry.shared_prefix(a, ~a), 0u);
}

TEST(Pastry, OwnerIsNumericallyClosest) {
  Rng rng(141);
  PastryOverlay pastry(4, 8);
  pastry.build(200, rng);
  for (int trial = 0; trial < 300; ++trial) {
    const u128 key = rng.next128();
    const u128 owner = pastry.owner_of(key);
    // No other node may be strictly closer: spot-check random nodes.
    for (int probe = 0; probe < 20; ++probe) {
      const u128 other = pastry.random_node(rng);
      const u128 d_owner = owner > key ? owner - key : key - owner;
      const u128 d_owner_wrapped = (u128(0) - d_owner) < d_owner
                                       ? (u128(0) - d_owner)
                                       : d_owner;
      const u128 d_other = other > key ? other - key : key - other;
      const u128 d_other_wrapped = (u128(0) - d_other) < d_other
                                       ? (u128(0) - d_other)
                                       : d_other;
      EXPECT_LE(d_owner_wrapped, d_other_wrapped);
    }
  }
}

TEST(Pastry, RoutesReachTheOwnerFromEverywhere) {
  Rng rng(142);
  PastryOverlay pastry(4, 16);
  pastry.build(400, rng);
  for (int trial = 0; trial < 400; ++trial) {
    const u128 key = rng.next128();
    const auto r = pastry.route(pastry.random_node(rng), key);
    ASSERT_TRUE(r.ok) << "trial " << trial;
    EXPECT_EQ(r.dest, pastry.owner_of(key));
  }
}

TEST(Pastry, HopsAreLogarithmicInDigitBase) {
  Rng rng(143);
  PastryOverlay pastry(4, 16);
  pastry.build(2000, rng);
  double total = 0;
  constexpr int kTrials = 500;
  std::size_t worst = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto r = pastry.route(pastry.random_node(rng), rng.next128());
    ASSERT_TRUE(r.ok);
    total += static_cast<double>(r.hops());
    worst = std::max(worst, r.hops());
  }
  // log_16(2000) ~ 2.7; allow leaf-set hops on top.
  EXPECT_LT(total / kTrials, 5.0);
  EXPECT_LE(worst, 10u);
}

TEST(Pastry, RoutePathsDoNotRevisitNodes) {
  Rng rng(144);
  PastryOverlay pastry(4, 16);
  pastry.build(300, rng);
  for (int trial = 0; trial < 100; ++trial) {
    const auto r = pastry.route(pastry.random_node(rng), rng.next128());
    ASSERT_TRUE(r.ok);
    std::set<u128> distinct(r.path.begin(), r.path.end());
    EXPECT_EQ(distinct.size(), r.path.size());
  }
}

TEST(Pastry, TinyOverlaysRouteViaLeafKnowledge) {
  Rng rng(145);
  PastryOverlay pastry(4, 16);
  pastry.build(3, rng); // smaller than the leaf set
  for (int trial = 0; trial < 50; ++trial) {
    const u128 key = rng.next128();
    const auto r = pastry.route(pastry.random_node(rng), key);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.dest, pastry.owner_of(key));
    EXPECT_LE(r.hops(), 2u);
  }
}

TEST(Pastry, RejectsBadConfiguration) {
  EXPECT_THROW(PastryOverlay(0, 16), std::invalid_argument);
  EXPECT_THROW(PastryOverlay(3, 16), std::invalid_argument); // 128 % 3 != 0
  EXPECT_THROW(PastryOverlay(4, 15), std::invalid_argument); // odd leaf set
  EXPECT_THROW(PastryOverlay(4, 0), std::invalid_argument);
}

} // namespace
} // namespace squid::overlay
