#include "squid/overlay/chord.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "squid/util/rng.hpp"

namespace squid::overlay {
namespace {

TEST(Chord, BuildProducesConsistentRing) {
  Rng rng(1);
  ChordRing ring(32);
  ring.build(200, rng);
  EXPECT_EQ(ring.size(), 200u);
  EXPECT_TRUE(ring.ring_consistent());
}

TEST(Chord, SuccessorOwnsKeysUpToItself) {
  Rng rng(2);
  ChordRing ring(16);
  ring.build(50, rng);
  const auto ids = ring.node_ids();
  // Key exactly at a node id is owned by that node.
  for (const NodeId id : ids) EXPECT_EQ(ring.successor_of(id), id);
  // A key one past a node is owned by the next node.
  for (std::size_t i = 0; i + 1 < ids.size(); ++i)
    EXPECT_EQ(ring.successor_of(ids[i] + 1), ids[i + 1]);
  // Wrap-around: keys past the last node map to the first.
  EXPECT_EQ(ring.successor_of(ids.back() + 1), ids.front());
}

TEST(Chord, FingersMatchDefinitionAfterRepair) {
  Rng rng(3);
  ChordRing ring(20);
  ring.build(100, rng);
  for (const NodeId id : ring.node_ids()) {
    const ChordNode& n = ring.node(id);
    ASSERT_EQ(n.fingers.size(), 20u);
    for (unsigned k = 0; k < 20; ++k)
      EXPECT_EQ(n.fingers[k], ring.successor_of(finger_target(id, k, 20)));
  }
}

TEST(Chord, RouteFindsOwnerFromEveryNode) {
  Rng rng(4);
  ChordRing ring(24);
  ring.build(150, rng);
  for (int trial = 0; trial < 300; ++trial) {
    const NodeId from = ring.random_node(rng);
    const u128 key = rng.below128(static_cast<u128>(1) << 24);
    const RouteResult r = ring.route(from, key);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.dest, ring.successor_of(key));
  }
}

TEST(Chord, RouteHopsAreLogarithmic) {
  Rng rng(5);
  ChordRing ring(40);
  ring.build(1000, rng);
  double total_hops = 0;
  constexpr int kTrials = 500;
  std::size_t worst = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const RouteResult r =
        ring.route(ring.random_node(rng),
                   rng.below128(static_cast<u128>(1) << 40));
    ASSERT_TRUE(r.ok);
    total_hops += static_cast<double>(r.hops());
    worst = std::max(worst, r.hops());
  }
  const double mean = total_hops / kTrials;
  // Chord's expected path length is ~0.5 * log2(N) = 5 for N=1000.
  EXPECT_LT(mean, 8.0);
  EXPECT_GT(mean, 2.0);
  EXPECT_LE(worst, 25u);
}

TEST(Chord, RoutePathHasNoDuplicates) {
  Rng rng(6);
  ChordRing ring(24);
  ring.build(300, rng);
  for (int trial = 0; trial < 200; ++trial) {
    const RouteResult r =
        ring.route(ring.random_node(rng),
                   rng.below128(static_cast<u128>(1) << 24));
    ASSERT_TRUE(r.ok);
    std::set<NodeId> distinct(r.path.begin(), r.path.end());
    EXPECT_EQ(distinct.size(), r.path.size());
  }
}

TEST(Chord, SingleNodeOwnsEverythingAndRoutesToItself) {
  ChordRing ring(16);
  ring.add_node_exact(1234);
  EXPECT_EQ(ring.successor_of(0), static_cast<NodeId>(1234));
  EXPECT_EQ(ring.successor_of(60000), static_cast<NodeId>(1234));
  const RouteResult r = ring.route(1234, 999);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.dest, static_cast<NodeId>(1234));
  EXPECT_EQ(r.hops(), 0u);
}

TEST(Chord, JoinSplicesRingAndStaysRoutable) {
  Rng rng(7);
  ChordRing ring(24);
  ring.build(50, rng);
  for (int i = 0; i < 50; ++i) {
    const NodeId fresh = ring.random_free_id(rng);
    const RouteResult r = ring.join(fresh, ring.random_node(rng));
    ASSERT_TRUE(r.ok);
  }
  EXPECT_EQ(ring.size(), 100u);
  // Joins splice eagerly, so the successor structure stays exact.
  EXPECT_TRUE(ring.ring_consistent());
  // Every key must still be routable to its true owner.
  for (int trial = 0; trial < 100; ++trial) {
    const u128 key = rng.below128(static_cast<u128>(1) << 24);
    const RouteResult r = ring.route(ring.random_node(rng), key);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.dest, ring.successor_of(key));
  }
}

TEST(Chord, GracefulLeaveKeepsRingConsistent) {
  Rng rng(8);
  ChordRing ring(24);
  ring.build(100, rng);
  for (int i = 0; i < 50; ++i) ring.leave(ring.random_node(rng));
  EXPECT_EQ(ring.size(), 50u);
  EXPECT_TRUE(ring.ring_consistent());
}

TEST(Chord, FailuresAreRepairedByStabilization) {
  Rng rng(9);
  ChordRing ring(24, /*successors=*/8);
  ring.build(200, rng);
  // Kill 30 random nodes without notice.
  for (int i = 0; i < 30; ++i) ring.fail(ring.random_node(rng));
  // Successor lists bridge the gaps; a few stabilization sweeps restore
  // exact successor pointers everywhere.
  ring.stabilize_all(rng, 3);
  EXPECT_TRUE(ring.ring_consistent());
  for (int trial = 0; trial < 100; ++trial) {
    const u128 key = rng.below128(static_cast<u128>(1) << 24);
    const RouteResult r = ring.route(ring.random_node(rng), key);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.dest, ring.successor_of(key));
  }
}

TEST(Chord, SurvivesSustainedChurn) {
  Rng rng(10);
  ChordRing ring(32, 8);
  ring.build(150, rng);
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (int i = 0; i < 5; ++i) {
      const double action = rng.uniform();
      if (action < 0.4) {
        (void)ring.join(ring.random_free_id(rng), ring.random_node(rng));
      } else if (action < 0.7) {
        ring.leave(ring.random_node(rng));
      } else {
        ring.fail(ring.random_node(rng));
      }
    }
    ring.stabilize_all(rng, 1);
  }
  ring.stabilize_all(rng, 4);
  EXPECT_TRUE(ring.ring_consistent());
  for (int trial = 0; trial < 50; ++trial) {
    const RouteResult r = ring.route(ring.random_node(rng), rng.next128() &
                                                               ring.id_mask());
    ASSERT_TRUE(r.ok) << "routing failed after churn";
    EXPECT_EQ(r.dest, ring.successor_of(r.dest)); // dest is a live owner
  }
}

// Regression (docs/FAULT_MODEL.md): repair_all used to assume a compacted
// membership array; after a mass departure the array can carry up to ~50%
// tombstones (remove_pos defers compaction below that density), and repair
// walked dead slots as if they were live. Fail a large scattered cohort —
// staying under the auto-compaction threshold — then verify oracle repair
// wires every surviving table through live entries only.
TEST(Chord, RepairAllToleratesTombstonedMembership) {
  Rng rng(21);
  ChordRing ring(24, /*successors=*/4);
  ring.build(64, rng);
  const auto ids = ring.node_ids();
  // Fail 30 of 64 (every other node, from the second): 30 tombstones on 64
  // entries stays below the 2*dead > size compaction trigger.
  std::set<NodeId> dead;
  for (std::size_t i = 1; i < ids.size() && dead.size() < 30; i += 2) {
    ring.fail(ids[i]);
    dead.insert(ids[i]);
  }
  ASSERT_EQ(ring.size(), 34u);

  ring.repair_all();
  EXPECT_TRUE(ring.ring_consistent());
  for (const NodeId id : ring.node_ids()) {
    const ChordNode& n = ring.node(id);
    EXPECT_FALSE(dead.count(n.successors.front()));
    for (const NodeId s : n.successors) EXPECT_FALSE(dead.count(s));
    for (const NodeId f : n.fingers) EXPECT_FALSE(dead.count(f));
    if (n.has_predecessor) EXPECT_FALSE(dead.count(n.predecessor));
  }
  for (int trial = 0; trial < 100; ++trial) {
    const u128 key = rng.below128(static_cast<u128>(1) << 24);
    const RouteResult r = ring.route(ring.random_node(rng), key);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.dest, ring.successor_of(key));
  }
}

// Failure detection (docs/FAULT_MODEL.md): after a timeout the observer
// purges the dead peer from its own tables and falls back along its
// successor list — and a false positive against a live peer must stay safe.
TEST(Chord, NoteTimeoutPurgesObserverStateAndFallsBack) {
  Rng rng(22);
  ChordRing ring(20, /*successors=*/4);
  ring.build(40, rng);
  const auto ids = ring.node_ids();
  const NodeId observer = ids[5];
  const NodeId victim = ring.node(observer).successors.front();
  ring.fail(victim);

  ring.note_timeout(observer, victim);
  const ChordNode& n = ring.node(observer);
  for (const NodeId s : n.successors) EXPECT_NE(s, victim);
  for (const NodeId f : n.fingers) EXPECT_NE(f, victim);
  EXPECT_EQ(n.successors.front(), ring.successor_of(victim));

  // False positive: suspecting a live peer only prunes local links, which
  // stabilization re-learns; the ring converges back to consistency.
  const NodeId live = ring.node(observer).successors.front();
  ring.note_timeout(observer, live);
  for (const NodeId s : ring.node(observer).successors) EXPECT_NE(s, live);
  ring.stabilize_all(rng, 3);
  EXPECT_TRUE(ring.ring_consistent());
  EXPECT_EQ(ring.node(observer).successors.front(), live);
}

TEST(Chord, RejectsBadConfiguration) {
  EXPECT_THROW(ChordRing(0), std::invalid_argument);
  EXPECT_THROW(ChordRing(129), std::invalid_argument);
  EXPECT_THROW(ChordRing(16, 0), std::invalid_argument);
  ChordRing ring(8);
  ring.add_node_exact(3);
  EXPECT_THROW(ring.add_node_exact(3), std::invalid_argument);
  EXPECT_THROW(ring.add_node_exact(256), std::invalid_argument);
  EXPECT_THROW((void)ring.route(99, 5), std::invalid_argument);
  EXPECT_THROW((void)ring.route(3, 256), std::invalid_argument);
}

TEST(Chord, FullWidthIdentifierSpace) {
  Rng rng(11);
  ChordRing ring(128);
  ring.build(50, rng);
  EXPECT_TRUE(ring.ring_consistent());
  const RouteResult r = ring.route(ring.random_node(rng), rng.next128());
  EXPECT_TRUE(r.ok);
}

} // namespace
} // namespace squid::overlay
