// Parser robustness: arbitrary input either parses into a valid query
// (whose rectangle is well-formed) or throws std::invalid_argument —
// never crashes, never yields malformed state.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "squid/keyword/space.hpp"
#include "squid/util/rng.hpp"

namespace squid::keyword {
namespace {

TEST(ParseFuzz, RandomInputsNeverCrash) {
  const KeywordSpace space(
      {StringCodec("abcdefghijklmnopqrstuvwxyz", 5), NumericCodec(0, 100, 8)});
  Rng rng(0xf022);
  const std::string charset = "abcxyz*,-() .0123456789";
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input;
    for (std::uint64_t j = rng.below(20); j-- > 0;)
      input.push_back(charset[rng.below(charset.size())]);
    try {
      const Query q = space.parse(input);
      // If it parses, the rectangle must be constructible and well-formed
      // (or to_rect itself reports the violation).
      try {
        const sfc::Rect rect = space.to_rect(q);
        ASSERT_EQ(rect.dims.size(), 2u);
        for (const auto& iv : rect.dims) ASSERT_LE(iv.lo, iv.hi);
      } catch (const std::invalid_argument&) {
        // e.g. reversed string range: rejected at rectangle construction
      }
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  // The charset is query-like, so both outcomes must actually occur.
  EXPECT_GT(parsed, 50);
  EXPECT_GT(rejected, 50);
}

TEST(ParseFuzz, ValidQueriesAlwaysReparse) {
  const KeywordSpace space(
      {StringCodec("abcdefghijklmnopqrstuvwxyz", 5), NumericCodec(0, 100, 8)});
  Rng rng(0xf023);
  for (int trial = 0; trial < 300; ++trial) {
    Query q;
    // Random valid term per dimension.
    const auto word = [&] {
      std::string w;
      for (std::uint64_t j = rng.range(1, 5); j-- > 0;)
        w.push_back("abcdefghijklmnopqrstuvwxyz"[rng.below(26)]);
      return w;
    };
    switch (rng.below(4)) {
      case 0: q.terms.push_back(Any{}); break;
      case 1: q.terms.push_back(Whole{word()}); break;
      case 2: q.terms.push_back(Prefix{word()}); break;
      default: {
        auto a = word(), b = word();
        if (b < a) std::swap(a, b);
        q.terms.push_back(StrRange{a, b});
      }
    }
    switch (rng.below(3)) {
      case 0: q.terms.push_back(Any{}); break;
      case 1: q.terms.push_back(NumExact{double(rng.below(100))}); break;
      default: {
        double lo = double(rng.below(100)), hi = double(rng.below(100));
        if (hi < lo) std::swap(lo, hi);
        q.terms.push_back(NumRange{lo, hi});
      }
    }
    // to_string -> parse -> to_string is a fixpoint.
    const std::string rendered = to_string(q);
    const Query reparsed = space.parse(rendered);
    EXPECT_EQ(to_string(reparsed), rendered);
    EXPECT_EQ(space.to_rect(reparsed), space.to_rect(q));
  }
}

} // namespace
} // namespace squid::keyword
