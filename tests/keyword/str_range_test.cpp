// Lexicographic string-range terms ("cat-dog"): ordered keyword intervals
// become coordinate intervals, resolvable like every other flexible query.

#include <gtest/gtest.h>

#include <algorithm>

#include "squid/core/system.hpp"
#include "squid/keyword/space.hpp"
#include "squid/util/rng.hpp"

namespace squid::keyword {
namespace {

constexpr const char* kAlpha = "abcdefghijklmnopqrstuvwxyz";

TEST(StrRange, ParseProducesStrRangeOnStringDims) {
  const KeywordSpace space({StringCodec(kAlpha, 5), StringCodec(kAlpha, 5)});
  const Query q = space.parse("(cat-dog, *)");
  const auto& term = std::get<StrRange>(q.terms[0]);
  EXPECT_EQ(term.lo, "cat");
  EXPECT_EQ(term.hi, "dog");
  EXPECT_EQ(to_string(q), "(cat-dog, *)");
}

TEST(StrRange, OpenBoundsCoverTheAxisEnds) {
  const KeywordSpace space({StringCodec(kAlpha, 3), StringCodec(kAlpha, 3)});
  const Query lo_open = space.parse("(*-m, *)");
  EXPECT_EQ(std::get<StrRange>(lo_open.terms[0]).lo, "");
  const Query hi_open = space.parse("(m-*, *)");
  EXPECT_EQ(std::get<StrRange>(hi_open.terms[0]).hi, "zzz");
}

TEST(StrRange, MembershipMatchesDictionaryOrder) {
  const KeywordSpace space({StringCodec(kAlpha, 5), StringCodec(kAlpha, 5)});
  const Query q = space.parse("(cat-dog, *)");
  const auto in = [&](const std::string& w) {
    return space.matches(q, {w, std::string("x")});
  };
  EXPECT_TRUE(in("cat"));
  EXPECT_TRUE(in("cats")); // "cats" > "cat", < "dog"
  EXPECT_TRUE(in("crow"));
  EXPECT_TRUE(in("dog"));
  EXPECT_FALSE(in("dogs")); // extensions of the upper bound sort after it
  EXPECT_FALSE(in("ant"));
  EXPECT_FALSE(in("eel"));
}

TEST(StrRange, RejectsReversedBounds) {
  const KeywordSpace space({StringCodec(kAlpha, 5), StringCodec(kAlpha, 5)});
  EXPECT_THROW((void)space.to_rect(space.parse("(dog-cat, *)")),
               std::invalid_argument);
}

TEST(StrRange, EndToEndQueryThroughTheEngine) {
  Rng rng(131);
  core::SquidSystem sys(
      keyword::KeywordSpace({StringCodec(kAlpha, 4), StringCodec(kAlpha, 4)}));
  sys.build_network(40, rng);
  const std::vector<std::string> words{"ant",  "bee",  "cat", "crow", "dog",
                                       "eel",  "fox",  "gnu", "hen",  "imp"};
  std::vector<core::DataElement> all;
  for (const auto& w : words) {
    all.push_back({"doc-" + w, {w, std::string("tag")}});
    sys.publish(all.back());
  }
  const Query q = sys.space().parse("(bee-fox, *)");
  const auto result = sys.query(q, sys.ring().random_node(rng));
  std::vector<std::string> got;
  for (const auto& e : result.elements) got.push_back(e.name);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::string>{"doc-bee", "doc-cat", "doc-crow",
                                           "doc-dog", "doc-eel", "doc-fox"}));
}

} // namespace
} // namespace squid::keyword
