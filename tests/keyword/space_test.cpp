#include "squid/keyword/space.hpp"

#include <gtest/gtest.h>

#include "squid/util/rng.hpp"

namespace squid::keyword {
namespace {

constexpr const char* kAlpha = "abcdefghijklmnopqrstuvwxyz";

KeywordSpace make_document_space() {
  // 2D storage-system space (paper Fig 1a): two keyword dimensions.
  return KeywordSpace({StringCodec(kAlpha, 5), StringCodec(kAlpha, 5)});
}

KeywordSpace make_resource_space() {
  // 3D grid-resource space (paper Fig 1b): storage, bandwidth, cost.
  return KeywordSpace({NumericCodec(0, 1024, 10), NumericCodec(0, 100, 10),
                       NumericCodec(0, 10000, 10)});
}

TEST(KeywordSpace, BitsPerDimIsWidestCodec) {
  const KeywordSpace mixed(
      {StringCodec(kAlpha, 5), NumericCodec(0, 100, 8)});
  EXPECT_EQ(mixed.dims(), 2u);
  EXPECT_EQ(mixed.bits_per_dim(), 24u); // string codec dominates
}

TEST(KeywordSpace, EncodeProducesPerDimensionCoordinates) {
  const KeywordSpace space = make_document_space();
  const sfc::Point p = space.encode({std::string("computer"),
                                     std::string("network")});
  ASSERT_EQ(p.size(), 2u);
  const auto& codec = std::get<StringCodec>(space.dimension(0));
  EXPECT_EQ(p[0], codec.encode("computer"));
  EXPECT_EQ(p[1], codec.encode("network"));
}

TEST(KeywordSpace, EncodeRejectsWrongTokenKind) {
  const KeywordSpace space = make_document_space();
  EXPECT_THROW((void)space.encode({3.0, std::string("net")}),
               std::invalid_argument);
  EXPECT_THROW((void)space.encode({std::string("one")}),
               std::invalid_argument);
  const KeywordSpace resources = make_resource_space();
  EXPECT_THROW((void)resources.encode({std::string("big"), 1.0, 2.0}),
               std::invalid_argument);
}

TEST(KeywordSpace, DecodeInvertsEncodeForStrings) {
  const KeywordSpace space = make_document_space();
  const auto tokens = space.decode(
      space.encode({std::string("comp"), std::string("net")}));
  EXPECT_EQ(std::get<std::string>(tokens[0]), "comp");
  EXPECT_EQ(std::get<std::string>(tokens[1]), "net");
}

TEST(KeywordSpace, ParseRecognizesEveryTermKind) {
  const KeywordSpace space(
      {StringCodec(kAlpha, 5), NumericCodec(0, 1024, 10)});
  const Query q = space.parse("(comp*, 256-512)");
  ASSERT_EQ(q.terms.size(), 2u);
  EXPECT_EQ(std::get<Prefix>(q.terms[0]).prefix, "comp");
  EXPECT_DOUBLE_EQ(std::get<NumRange>(q.terms[1]).lo, 256);
  EXPECT_DOUBLE_EQ(std::get<NumRange>(q.terms[1]).hi, 512);

  const Query q2 = space.parse("network, *");
  EXPECT_EQ(std::get<Whole>(q2.terms[0]).word, "network");
  EXPECT_TRUE(std::holds_alternative<Any>(q2.terms[1]));

  const Query q3 = space.parse("(x, 100-*)");
  EXPECT_DOUBLE_EQ(std::get<NumRange>(q3.terms[1]).lo, 100);
  EXPECT_DOUBLE_EQ(std::get<NumRange>(q3.terms[1]).hi, 1024);

  const Query q4 = space.parse("(x, *-100)");
  EXPECT_DOUBLE_EQ(std::get<NumRange>(q4.terms[1]).lo, 0);
  EXPECT_DOUBLE_EQ(std::get<NumRange>(q4.terms[1]).hi, 100);

  const Query q5 = space.parse("(x, 42)");
  EXPECT_DOUBLE_EQ(std::get<NumExact>(q5.terms[1]).value, 42);
}

TEST(KeywordSpace, ParseRejectsArityMismatch) {
  const KeywordSpace space = make_document_space();
  EXPECT_THROW((void)space.parse("(one)"), std::invalid_argument);
  EXPECT_THROW((void)space.parse("(a, b, c)"), std::invalid_argument);
  EXPECT_THROW((void)space.parse("(, b)"), std::invalid_argument);
}

TEST(KeywordSpace, QueryToStringRoundTrips) {
  const KeywordSpace space(
      {StringCodec(kAlpha, 5), NumericCodec(0, 1024, 10)});
  EXPECT_EQ(to_string(space.parse("(comp*, 256-512)")), "(comp*, 256-512)");
  EXPECT_EQ(to_string(space.parse("(net, *)")), "(net, *)");
}

TEST(KeywordSpace, MatchesImplementsFlexibleQuerySemantics) {
  const KeywordSpace space = make_document_space();
  const std::vector<Token> doc{std::string("compu"), std::string("netwo")};

  EXPECT_TRUE(space.matches(space.parse("(compu, netwo)"), doc));
  EXPECT_TRUE(space.matches(space.parse("(comp*, net*)"), doc));
  EXPECT_TRUE(space.matches(space.parse("(comp*, *)"), doc));
  EXPECT_TRUE(space.matches(space.parse("(*, *)"), doc));
  EXPECT_FALSE(space.matches(space.parse("(comp, *)"), doc)); // whole != prefix
  EXPECT_FALSE(space.matches(space.parse("(x*, *)"), doc));
  EXPECT_FALSE(space.matches(space.parse("(compu, x*)"), doc));
}

TEST(KeywordSpace, RangeQueriesMatchLikeThePaperExample) {
  // "(256-512MB, *, 1Mbps-*)" from 3.3: memory, cpu, bandwidth.
  const KeywordSpace space({NumericCodec(0, 2048, 12),
                            NumericCodec(0, 4000, 12),
                            NumericCodec(0, 1000, 12)});
  const Query q = space.parse("(256-512, *, 100-*)");
  EXPECT_TRUE(space.matches(q, {300.0, 1000.0, 500.0}));
  EXPECT_TRUE(space.matches(q, {512.0, 0.0, 100.0}));
  EXPECT_FALSE(space.matches(q, {600.0, 1000.0, 500.0}));
  EXPECT_FALSE(space.matches(q, {300.0, 1000.0, 50.0}));
}

TEST(KeywordSpace, ToRectAgreesWithCurveContainment) {
  // matches() is defined via the rectangle, so any element matching the
  // query must land in a cluster of the decomposition; cross-check through
  // an actual curve round trip.
  const KeywordSpace space(
      {StringCodec("abcd", 3), StringCodec("abcd", 3)});
  const Query q = space.parse("(a*, *)");
  const sfc::Rect rect = space.to_rect(q);
  Rng rng(8);
  const char letters[] = "abcd";
  for (int i = 0; i < 200; ++i) {
    std::string w1, w2;
    for (std::uint64_t j = rng.below(4); j-- > 0;)
      w1.push_back(letters[rng.below(4)]);
    for (std::uint64_t j = rng.below(4); j-- > 0;)
      w2.push_back(letters[rng.below(4)]);
    const std::vector<Token> doc{w1, w2};
    EXPECT_EQ(rect.contains(space.encode(doc)), w1.starts_with("a"))
        << w1 << "," << w2;
  }
}

TEST(KeywordSpace, RejectsTermKindMismatchedToDimension) {
  const KeywordSpace space(
      {StringCodec(kAlpha, 5), NumericCodec(0, 100, 8)});
  Query bad1{{NumRange{1, 2}, Any{}}};
  EXPECT_THROW((void)space.to_rect(bad1), std::invalid_argument);
  Query bad2{{Any{}, Whole{"word"}}};
  EXPECT_THROW((void)space.to_rect(bad2), std::invalid_argument);
}

TEST(KeywordSpace, RejectsOversizedIndexBudget) {
  // 6 string dims x 24 bits = 144 bits > 128.
  std::vector<KeywordSpace::Dimension> dims;
  for (int i = 0; i < 6; ++i) dims.push_back(StringCodec(kAlpha, 5));
  EXPECT_THROW(KeywordSpace space(std::move(dims)), std::invalid_argument);
}

} // namespace
} // namespace squid::keyword
