#include "squid/keyword/codec.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "squid/util/rng.hpp"

namespace squid::keyword {
namespace {

constexpr const char* kAlpha = "abcdefghijklmnopqrstuvwxyz";

TEST(StringCodec, GeometryForPaperLikeConfig) {
  const StringCodec codec(kAlpha, 5);
  EXPECT_EQ(codec.base(), 27u);
  EXPECT_EQ(codec.max_coord(), 14348906u); // 27^5 - 1
  EXPECT_EQ(codec.bits(), 24u);            // ceil(log2(27^5))
}

TEST(StringCodec, EncodePreservesLexicographicOrder) {
  const StringCodec codec(kAlpha, 6);
  const std::vector<std::string> sorted{"a",     "ab",      "abc", "b",
                                        "comp",  "compa",   "compb",
                                        "comput", "conq",   "zebra"};
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    EXPECT_LT(codec.encode(sorted[i]), codec.encode(sorted[i + 1]))
        << sorted[i] << " vs " << sorted[i + 1];
  }
}

TEST(StringCodec, EmptyWordIsOrigin) {
  const StringCodec codec(kAlpha, 4);
  EXPECT_EQ(codec.encode(""), 0u);
  EXPECT_EQ(codec.decode(0), "");
}

TEST(StringCodec, EncodeDecodeRoundTrip) {
  const StringCodec codec(kAlpha, 5);
  Rng rng(4);
  for (int trial = 0; trial < 500; ++trial) {
    std::string word;
    const auto len = rng.below(6);
    for (std::uint64_t i = 0; i < len; ++i)
      word.push_back(kAlpha[rng.below(26)]);
    EXPECT_EQ(codec.decode(codec.encode(word)), word);
  }
}

TEST(StringCodec, LongWordsAreTruncatedToMaxLen) {
  const StringCodec codec(kAlpha, 4);
  EXPECT_EQ(codec.encode("computation"), codec.encode("comp"));
  EXPECT_EQ(codec.decode(codec.encode("computation")), "comp");
}

TEST(StringCodec, UnknownCharactersRejected) {
  const StringCodec codec(kAlpha, 4);
  EXPECT_THROW((void)codec.encode("C3PO"), std::invalid_argument);
  EXPECT_THROW((void)codec.encode("a b"), std::invalid_argument);
}

TEST(StringCodec, PrefixIntervalSelectsExactlyExtensions) {
  // Exhaustive over a tiny alphabet: interval membership must coincide with
  // the string prefix relation (after truncation to max_len).
  const StringCodec codec("ab", 3);
  std::vector<std::string> all_words{""};
  for (const char c1 : {'a', 'b'}) {
    all_words.push_back(std::string{c1});
    for (const char c2 : {'a', 'b'}) {
      all_words.push_back(std::string{c1, c2});
      for (const char c3 : {'a', 'b'})
        all_words.push_back(std::string{c1, c2, c3});
    }
  }
  for (const std::string prefix : {"a", "b", "ab", "ba", "aba"}) {
    const sfc::Interval iv = codec.prefix_interval(prefix);
    for (const auto& word : all_words) {
      const bool is_extension = word.starts_with(prefix);
      EXPECT_EQ(iv.contains(codec.encode(word)), is_extension)
          << "prefix " << prefix << " word " << word;
    }
  }
}

TEST(StringCodec, PrefixIntervalOfWholeWordLengthIsAPoint) {
  const StringCodec codec(kAlpha, 4);
  const sfc::Interval iv = codec.prefix_interval("comp");
  EXPECT_EQ(iv.lo, iv.hi);
  EXPECT_EQ(iv.lo, codec.encode("comp"));
}

TEST(StringCodec, AnyIntervalCoversAllWords) {
  const StringCodec codec(kAlpha, 3);
  const sfc::Interval iv = codec.any_interval();
  EXPECT_EQ(iv.lo, 0u);
  EXPECT_EQ(iv.hi, codec.max_coord());
  EXPECT_TRUE(iv.contains(codec.encode("zzz")));
}

TEST(StringCodec, RejectsBadConfiguration) {
  EXPECT_THROW(StringCodec("", 3), std::invalid_argument);
  EXPECT_THROW(StringCodec("aa", 3), std::invalid_argument);
  EXPECT_THROW(StringCodec(kAlpha, 0), std::invalid_argument);
  EXPECT_THROW(StringCodec(kAlpha, 14), std::invalid_argument); // > 63 bits
  EXPECT_THROW(StringCodec(kAlpha, 4).prefix_interval("abcde"),
               std::invalid_argument);
}

TEST(NumericCodec, EncodeIsMonotoneAndClamped) {
  const NumericCodec codec(0.0, 1000.0, 10);
  EXPECT_EQ(codec.encode(-5.0), 0u);
  EXPECT_EQ(codec.encode(0.0), 0u);
  EXPECT_EQ(codec.encode(1000.0), codec.max_coord());
  EXPECT_EQ(codec.encode(2000.0), codec.max_coord());
  std::uint64_t prev = 0;
  for (double v = 0; v <= 1000; v += 7.3) {
    const auto c = codec.encode(v);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(NumericCodec, DecodeReturnsBucketEdgeInsideRange) {
  const NumericCodec codec(100.0, 200.0, 6);
  for (std::uint64_t c = 0; c <= codec.max_coord(); ++c) {
    const double v = codec.decode(c);
    EXPECT_GE(v, 100.0);
    EXPECT_LT(v, 200.0);
    EXPECT_EQ(codec.encode(v), c); // decode lands back in the same bucket
  }
}

TEST(NumericCodec, RangeIntervalCoversContainedValues) {
  const NumericCodec codec(0.0, 4096.0, 12);
  const sfc::Interval iv = codec.range_interval(256.0, 512.0);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const double v = 256.0 + rng.uniform() * (512.0 - 256.0);
    EXPECT_TRUE(iv.contains(codec.encode(v))) << v;
  }
  EXPECT_FALSE(iv.contains(codec.encode(1024.0)));
  EXPECT_FALSE(iv.contains(codec.encode(128.0)));
}

TEST(NumericCodec, RejectsBadConfiguration) {
  EXPECT_THROW(NumericCodec(1.0, 1.0, 8), std::invalid_argument);
  EXPECT_THROW(NumericCodec(2.0, 1.0, 8), std::invalid_argument);
  EXPECT_THROW(NumericCodec(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(NumericCodec(0.0, 1.0, 64), std::invalid_argument);
  const NumericCodec codec(0.0, 10.0, 4);
  EXPECT_THROW((void)codec.range_interval(5.0, 4.0), std::invalid_argument);
  EXPECT_THROW((void)codec.decode(16), std::invalid_argument);
}

} // namespace
} // namespace squid::keyword
