#include "squid/sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace squid::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(30, [&] { order.push_back(3); });
  engine.schedule(10, [&] { order.push_back(1); });
  engine.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30u);
}

TEST(Engine, EqualTimestampsRunFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) engine.schedule(7, [&, i] { order.push_back(i); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) engine.schedule(1, recurse);
  };
  engine.schedule(1, recurse);
  engine.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(engine.now(), 5u);
}

TEST(Engine, RunUntilLeavesFutureEventsQueued) {
  Engine engine;
  int ran = 0;
  engine.schedule(5, [&] { ++ran; });
  engine.schedule(15, [&] { ++ran; });
  EXPECT_EQ(engine.run(10), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(engine.now(), 10u);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(ran, 2);
}

TEST(Engine, PeriodicRunsUntilActionDeclines) {
  Engine engine;
  int ticks = 0;
  engine.schedule_periodic(10, [&] { return ++ticks < 4; });
  engine.run();
  EXPECT_EQ(ticks, 4);
  EXPECT_EQ(engine.now(), 40u);
}

TEST(Engine, RejectsEmptyActions) {
  Engine engine;
  EXPECT_THROW(engine.schedule(1, Engine::Action{}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_periodic(0, [] { return false; }),
               std::invalid_argument);
}

} // namespace
} // namespace squid::sim
