// Single-step scheduling surface added for the message-driven query
// runtime (DESIGN.md 4e): Engine::step() runs exactly one event,
// peek_time() exposes the next arrival without running it, and
// admit()/send() are the uniform fault-interception points.

#include "squid/sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "squid/sim/fault.hpp"

namespace squid::sim {
namespace {

TEST(EngineStep, RunsExactlyOneEventAndAdvancesTheClock) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(10, [&] { order.push_back(1); });
  engine.schedule(20, [&] { order.push_back(2); });

  EXPECT_TRUE(engine.step());
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(engine.now(), 10u);
  EXPECT_EQ(engine.pending(), 1u);

  EXPECT_TRUE(engine.step());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(engine.now(), 20u);
  EXPECT_TRUE(engine.empty());
}

TEST(EngineStep, EmptyQueueStepIsANoOp) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(engine.now(), 0u);
  engine.schedule(5, [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(engine.now(), 5u);
}

TEST(EngineStep, EqualTimestampsStepInFifoOrder) {
  // The FIFO tie-break is what lets the lockstep query runtime replay the
  // seed recursion's task order; step() must honor it exactly like run().
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) engine.schedule(3, [&, i] { order.push_back(i); });
  while (engine.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(engine.now(), 3u);
}

TEST(EngineStep, StepHandlesEventsScheduledByEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 4) engine.schedule(0, recurse);
  };
  engine.schedule(0, recurse);
  std::size_t steps = 0;
  while (engine.step()) ++steps;
  EXPECT_EQ(depth, 4);
  EXPECT_EQ(steps, 4u);
}

TEST(EnginePeek, ReportsNextArrivalWithoutRunningIt) {
  Engine engine;
  EXPECT_EQ(engine.peek_time(), Engine::kNever);
  engine.schedule(42, [] {});
  engine.schedule(7, [] {});
  EXPECT_EQ(engine.peek_time(), 7u);
  EXPECT_EQ(engine.now(), 0u); // peeking does not advance the clock
  engine.step();
  EXPECT_EQ(engine.peek_time(), 42u);
  engine.step();
  EXPECT_EQ(engine.peek_time(), Engine::kNever);
}

TEST(EngineStep, StartClockIsRespected) {
  // The lockstep query path constructs its private engine at the injector's
  // current time so partition windows keyed on absolute time still apply.
  Engine engine(100);
  EXPECT_EQ(engine.now(), 100u);
  sim::Time seen = 0;
  engine.schedule(5, [&] { seen = engine.now(); });
  engine.step();
  EXPECT_EQ(seen, 105u);
}

TEST(EngineStep, StepAdvancesAnAttachedInjectorClock) {
  FaultPlan plan;
  plan.partitions.push_back({50, 100, 1 << 10});
  FaultInjector injector(std::move(plan));
  Engine engine;
  engine.set_fault_injector(&injector);

  engine.schedule(60, [] {});
  EXPECT_EQ(injector.now(), 0u);
  engine.step();
  EXPECT_EQ(injector.now(), 60u);
  // Inside the partition window, cross-pivot sends are severed.
  EXPECT_TRUE(injector.partitioned(1, (1 << 10) + 1));
}

TEST(EngineAdmit, NullInjectorAlwaysDeliversCleanly) {
  Engine engine;
  const SendOutcome verdict = engine.admit(1, 2);
  EXPECT_TRUE(verdict.delivered);
  EXPECT_EQ(verdict.extra_delay, 0u);
  EXPECT_FALSE(verdict.duplicate);
}

TEST(EngineAdmit, ForwardsTheInjectorVerdict) {
  FaultPlan plan;
  plan.drop_probability = 1.0; // every admit() is a drop
  FaultInjector injector(std::move(plan));
  Engine engine;
  engine.set_fault_injector(&injector);
  EXPECT_EQ(engine.fault_injector(), &injector);

  const SendOutcome verdict = engine.admit(1, 2);
  EXPECT_FALSE(verdict.delivered);
  EXPECT_EQ(injector.dropped(), 1u);
}

TEST(EngineSend, DropsAreNotScheduledAndDuplicatesAreScheduledTwice) {
  {
    FaultPlan plan;
    plan.drop_probability = 1.0;
    FaultInjector injector(std::move(plan));
    Engine engine;
    engine.set_fault_injector(&injector);
    int ran = 0;
    EXPECT_FALSE(engine.send(1, 1, 2, [&] { ++ran; }));
    engine.run();
    EXPECT_EQ(ran, 0);
  }
  {
    FaultPlan plan;
    plan.duplicate_probability = 1.0;
    FaultInjector injector(std::move(plan));
    Engine engine;
    engine.set_fault_injector(&injector);
    int ran = 0;
    EXPECT_TRUE(engine.send(1, 1, 2, [&] { ++ran; }));
    engine.run();
    EXPECT_EQ(ran, 2); // receivers are modeled as deduplicating copies
  }
}

} // namespace
} // namespace squid::sim
