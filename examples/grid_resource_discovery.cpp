// Grid resource discovery (the paper's second motivating application):
// machines advertise numeric attributes — storage, bandwidth, cost — and a
// scheduler finds candidates with *range* queries like
// "256-512 GB storage, any CPU, at least 1 Mbps", which plain DHTs cannot
// express.
//
//   $ ./grid_resource_discovery

#include <iomanip>
#include <iostream>

#include "squid/core/system.hpp"
#include "squid/workload/corpus.hpp"

int main() {
  using namespace squid;

  // Attribute space straight from the paper's Fig 1(b): storage space,
  // base bandwidth, cost.
  workload::ResourceCorpus corpus;
  core::SquidConfig config;
  config.join_samples = 8;
  core::SquidSystem squid(corpus.make_space(), config);

  Rng rng(42);
  squid.build_network(200, rng);

  // Sites advertise their machines.
  for (const auto& machine : corpus.make_elements(2000, rng))
    squid.publish(machine);
  std::cout << "indexed " << squid.element_count() << " machines across "
            << squid.ring().size() << " peers\n\n";

  struct Request {
    const char* what;
    keyword::Query query;
  };
  const std::vector<Request> requests{
      {"mid-size storage, gigabit link, any cost",
       corpus.make_space().parse("(256-512, 900-1100, *)")},
      {"big storage, any link, budget <= 50",
       corpus.make_space().parse("(1000-*, *, *-50)")},
      {"exactly the 128 GB tier, fast link",
       corpus.q3_keyword_range(128, 2000, 10000)},
  };

  for (const auto& request : requests) {
    const auto result = squid.query(request.query, squid.ring().random_node(rng));
    std::cout << request.what << "\n  " << keyword::to_string(request.query)
              << " -> " << result.stats.matches << " machines ("
              << result.stats.messages << " messages, "
              << result.stats.processing_nodes << " peers processed)\n";
    for (std::size_t i = 0; i < std::min<std::size_t>(3, result.elements.size());
         ++i) {
      const auto& m = result.elements[i];
      std::cout << "    " << m.name << ": storage "
                << std::fixed << std::setprecision(0)
                << std::get<double>(m.keys[0]) << " GB, bw "
                << std::get<double>(m.keys[1]) << " Mbps, cost "
                << std::get<double>(m.keys[2]) << "\n";
    }
    std::cout << '\n';
  }
  return 0;
}
