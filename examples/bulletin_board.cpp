// Bulletin-board discovery by interest profile (the paper's third use case):
// postings are indexed under (newsgroup, topic) keywords; readers discover
// everything matching an interest profile such as "any posting in groups
// starting with sci about topics starting with bio".
//
//   $ ./bulletin_board

#include <iostream>

#include "squid/core/system.hpp"

int main() {
  using namespace squid;

  keyword::KeywordSpace space(
      {keyword::StringCodec("abcdefghijklmnopqrstuvwxyz", 6),
       keyword::StringCodec("abcdefghijklmnopqrstuvwxyz", 6)});
  core::SquidSystem board(std::move(space));
  Rng rng(11);
  board.build_network(48, rng);

  struct Post {
    const char* id;
    const char* group;
    const char* topic;
  };
  const Post posts[] = {
      {"post-001", "scibio", "genome"},   {"post-002", "scibio", "protein"},
      {"post-003", "sciphy", "quantum"},  {"post-004", "scimat", "tensor"},
      {"post-005", "recgame", "chess"},   {"post-006", "recgame", "poker"},
      {"post-007", "compnet", "routing"}, {"post-008", "compsys", "kernel"},
      {"post-009", "compnet", "switch"},  {"post-010", "scibio", "genome"},
  };
  for (const auto& p : posts)
    board.publish({p.id, {std::string(p.group), std::string(p.topic)}});
  std::cout << "bulletin board: " << board.element_count() << " posts on "
            << board.ring().size() << " peers\n\n";

  struct Profile {
    const char* reader;
    const char* interest;
  };
  const Profile profiles[] = {
      {"alice (biologist)", "(scibio, *)"},
      {"bob (any science)", "(sci*, *)"},
      {"carol (games)", "(rec*, *)"},
      {"dave (networking topics anywhere)", "(*, rout*)"},
      {"erin (genomics exactly)", "(scibio, genome)"},
  };

  for (const auto& profile : profiles) {
    const auto result = board.query(profile.interest, rng);
    std::cout << profile.reader << " subscribes to " << profile.interest
              << " -> " << result.stats.matches << " posts:";
    for (const auto& e : result.elements) std::cout << ' ' << e.name;
    std::cout << "\n";
  }
  return 0;
}
