// Full-text document indexing: extract descriptive keywords from real
// abstracts with the text pipeline, index each document under its top two
// keywords, and discover papers by partial-keyword and keyword-range
// queries — the paper's P2P storage use case end to end.
//
//   $ ./document_index

#include <iostream>

#include "squid/core/system.hpp"
#include "squid/workload/text.hpp"

int main() {
  using namespace squid;

  struct Paper {
    const char* file;
    const char* abstract;
  };
  const Paper library[] = {
      {"chord.pdf",
       "A fundamental problem that confronts peer to peer applications is to "
       "efficiently locate the node that stores a particular data item. This "
       "paper presents Chord, a distributed lookup protocol that addresses "
       "this problem."},
      {"can.pdf",
       "Hash tables which map keys onto values are an essential building "
       "block in modern software systems. We believe a similar functionality "
       "would be equally valuable to large distributed systems. We introduce "
       "the concept of a Content Addressable Network."},
      {"squid.pdf",
       "The ability to efficiently discover information using partial "
       "knowledge is important in large decentralized distributed sharing "
       "environments. This paper presents a peer to peer information "
       "discovery system supporting flexible queries."},
      {"pastry.pdf",
       "This paper presents the design and evaluation of Pastry, a scalable "
       "distributed object location and routing substrate for wide area peer "
       "to peer applications."},
      {"gnutella-survey.pdf",
       "Unstructured overlay networks flood queries among peers. We survey "
       "search and replication strategies in unstructured peer to peer "
       "networks and measure their bandwidth cost."},
      {"grid-blueprint.pdf",
       "Grid computing enables the sharing of geographically distributed "
       "hardware software and information resources. This blueprint surveys "
       "the grid infrastructure for computational science."},
      {"hilbert-clustering.pdf",
       "We analyze the clustering properties of the Hilbert space filling "
       "curve and derive closed form formulas for the expected number of "
       "clusters in a query region."},
  };

  keyword::KeywordSpace space(
      {keyword::StringCodec("abcdefghijklmnopqrstuvwxyz", 6),
       keyword::StringCodec("abcdefghijklmnopqrstuvwxyz", 6)});
  core::SquidSystem index(std::move(space));
  Rng rng(19);
  index.build_network(32, rng);

  for (const auto& paper : library) {
    auto keywords = workload::extract_keywords(paper.abstract, 2);
    while (keywords.size() < 2) keywords.push_back("misc");
    std::cout << paper.file << " -> keywords (" << keywords[0] << ", "
              << keywords[1] << ")\n";
    index.publish({paper.file, {keywords[0], keywords[1]}});
  }
  std::cout << '\n';

  for (const std::string search :
       {"(peer, *)", "(dis*, *)", "(*, c*)", "(a-m, *)"}) {
    const auto result = index.query(search, rng);
    std::cout << "search " << search << " -> " << result.stats.matches
              << " papers:";
    for (const auto& e : result.elements) std::cout << ' ' << e.name;
    std::cout << '\n';
  }
  return 0;
}
