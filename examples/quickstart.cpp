// Quickstart: build a small Squid network, publish documents described by
// keywords, and run the paper's flexible queries — whole keywords, partial
// keywords with wildcards, and combinations.
//
//   $ ./quickstart
//
// Walks through the public API end to end: KeywordSpace -> SquidSystem ->
// publish -> query, and shows the per-query cost accounting.

#include <iostream>

#include "squid/core/system.hpp"

int main() {
  using namespace squid;

  // 1. Describe the information space: documents carry two keywords
  //    (e.g. topic and format), each up to 6 lowercase characters.
  keyword::KeywordSpace space(
      {keyword::StringCodec("abcdefghijklmnopqrstuvwxyz", 6),
       keyword::StringCodec("abcdefghijklmnopqrstuvwxyz", 6)});

  // 2. Bring up a Squid overlay: 64 peers, Hilbert-curve index (default),
  //    load-balancing join enabled.
  core::SquidConfig config;
  config.join_samples = 8;
  core::SquidSystem squid(std::move(space), config);
  Rng rng(7);
  squid.build_network(64, rng);
  std::cout << "network: " << squid.ring().size() << " peers, index space 2^"
            << squid.curve().index_bits() << "\n\n";

  // 3. Publish data elements — each a name plus one keyword per dimension.
  const std::vector<core::DataElement> library{
      {"hpdc03.pdf", {std::string("grid"), std::string("paper")}},
      {"chord.pdf", {std::string("dht"), std::string("paper")}},
      {"squid.tex", {std::string("grid"), std::string("draft")}},
      {"notes.txt", {std::string("grid"), std::string("notes")}},
      {"gnutella.md", {std::string("peer"), std::string("notes")}},
      {"can.pdf", {std::string("dht"), std::string("paper")}},
      {"dataset.csv", {std::string("data"), std::string("table")}},
  };
  for (const auto& element : library) squid.publish(element);
  std::cout << "published " << squid.element_count() << " elements under "
            << squid.key_count() << " distinct keys\n\n";

  // 4. Query with full flexibility. All matching elements are guaranteed to
  //    be found, with bounded cost.
  for (const std::string text :
       {"(grid, paper)", "(grid, *)", "(d*, paper)", "(*, notes)"}) {
    const core::QueryResult result = squid.query(text, rng);
    std::cout << "query " << text << " -> " << result.stats.matches
              << " matches:";
    for (const auto& e : result.elements) std::cout << ' ' << e.name;
    std::cout << "\n  cost: " << result.stats.messages << " messages, "
              << result.stats.processing_nodes << " processing nodes, "
              << result.stats.data_nodes << " data nodes (of "
              << squid.ring().size() << " peers)\n";
  }
  return 0;
}
