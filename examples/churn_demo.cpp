// Dynamics demo: peers join, leave gracefully, and fail abruptly while
// queries keep running. Periodic stabilization (paper 3.2) repairs the
// overlay; the demo tracks query completeness through the churn.
//
//   $ ./churn_demo

#include <algorithm>
#include <iostream>

#include "squid/core/system.hpp"
#include "squid/sim/engine.hpp"
#include "squid/workload/corpus.hpp"

int main() {
  using namespace squid;

  Rng rng(99);
  workload::KeywordCorpus corpus(2, 300, 0.9, rng);
  core::SquidSystem squid(corpus.make_space());
  squid.build_network(200, rng);

  std::vector<core::DataElement> all = corpus.make_elements(5000, rng);
  for (const auto& e : all) squid.publish(e);

  const keyword::Query probe = corpus.q1(1, /*partial=*/true);
  std::size_t expected = 0;
  for (const auto& e : all) expected += squid.space().matches(probe, e.keys);
  std::cout << "probe query " << keyword::to_string(probe) << " has "
            << expected << " true matches\n\n";

  // Drive churn from the discrete-event engine: every tick a few peers
  // join/leave/fail; every 5 ticks each peer runs one stabilization round.
  sim::Engine engine;
  Rng churn_rng = rng.fork();
  auto& sys = squid;
  int epoch = 0;
  engine.schedule_periodic(1, [&]() -> bool {
    for (int i = 0; i < 4; ++i) {
      const double dice = churn_rng.uniform();
      if (dice < 0.4) {
        (void)sys.join_node(churn_rng);
      } else if (dice < 0.7 && sys.ring().size() > 50) {
        sys.leave_node(sys.ring().random_node(churn_rng));
      } else if (sys.ring().size() > 50) {
        sys.fail_node(sys.ring().random_node(churn_rng));
      }
    }
    return ++epoch < 50;
  });

  Rng stab_rng = rng.fork();
  engine.schedule_periodic(5, [&]() -> bool {
    // One stabilization round per peer, as each peer's periodic timer fires.
    sys.stabilize(stab_rng, 1);
    // Probe mid-churn.
    const auto result = sys.query(probe, sys.ring().random_node(stab_rng));
    std::cout << "t=" << engine.now() << "  peers=" << sys.ring().size()
              << "  matches=" << result.stats.matches << "/" << expected
              << (result.stats.matches == expected ? "  (complete)"
                                                   : "  (degraded)")
              << "\n";
    return epoch < 50;
  });

  engine.run();

  // After churn quiesces, a few stabilization rounds restore exactness.
  sys.stabilize(stab_rng, 4);
  const auto final_result = sys.query(probe, sys.ring().random_node(stab_rng));
  std::cout << "\nfinal: peers=" << sys.ring().size() << " matches="
            << final_result.stats.matches << "/" << expected << " -> "
            << (final_result.stats.matches == expected ? "complete"
                                                       : "incomplete")
            << "\n";
  return final_result.stats.matches == expected ? 0 : 1;
}
