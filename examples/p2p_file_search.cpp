// P2P file sharing with keyword search (the paper's first motivating
// application): files are described by keywords rather than exact names, so
// users can find "every document about computer networks" without knowing
// any filename — with guarantees, unlike Gnutella-style flooding.
//
//   $ ./p2p_file_search

#include <iostream>

#include "squid/core/system.hpp"
#include "squid/workload/corpus.hpp"

int main() {
  using namespace squid;

  Rng rng(2003);
  workload::KeywordCorpus corpus(/*dims=*/2, /*vocabulary=*/400,
                                 /*zipf=*/0.9, rng);
  core::SquidConfig config;
  config.join_samples = 8;
  core::SquidSystem squid(corpus.make_space(), config);

  // A community of 500 peers sharing 20000 files.
  squid.build_network(1, rng);
  for (const auto& file : corpus.make_elements(20000, rng))
    squid.publish(file);
  for (int i = 1; i < 500; ++i) (void)squid.join_node(rng);
  for (int s = 0; s < 10; ++s) (void)squid.runtime_balance_sweep(1.3);
  squid.repair_routing();
  std::cout << squid.ring().size() << " peers share "
            << squid.element_count() << " files (" << squid.key_count()
            << " distinct keyword pairs)\n\n";

  // Users search with whatever they remember of the keywords.
  const std::string popular = corpus.vocabulary().by_rank(0);
  const std::string other = corpus.vocabulary().by_rank(5);
  const std::vector<std::string> searches{
      "(" + popular + ", *)",                    // one whole keyword
      "(" + popular.substr(0, 3) + "*, *)",      // partial keyword
      "(" + popular.substr(0, 3) + "*, " + other.substr(0, 3) + "*)",
      "(" + popular + ", " + other + ")",        // fully specified
  };

  for (const auto& text : searches) {
    const auto result = squid.query(text, rng);
    const double fraction = 100.0 *
                            static_cast<double>(result.stats.processing_nodes) /
                            static_cast<double>(squid.ring().size());
    std::cout << text << " -> " << result.stats.matches << " files\n"
              << "  guaranteed complete; touched " << result.stats.processing_nodes
              << " peers (" << fraction << "% of the network), "
              << result.stats.messages << " messages\n";
  }

  std::cout << "\nA flooding network would contact every peer to give the "
               "same guarantee;\na plain DHT could only resolve the last, "
               "fully-specified search.\n";
  return 0;
}
