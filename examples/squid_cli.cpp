// Interactive Squid shell: drive a simulated deployment from the command
// line — build a network, publish and remove documents, run flexible
// queries, explain how a query resolved, inspect load, and
// snapshot/restore state.
//
//   $ ./squid_cli
//   squid> build 64
//   squid> publish report.pdf grid data
//   squid> query (gri*, *)
//   squid> explain (gri*, *)
//   squid> save /tmp/squid.snapshot
//
// Reads commands from stdin (scriptable: `./squid_cli < commands.txt`).
// With --trace-out=FILE, every `explain` additionally writes the span
// trace as Chrome/Perfetto trace_event JSON to FILE.
//
// The session also carries a virtual-time telemetry sampler
// (obs/telemetry.hpp): every publish and query records per-node load, the
// session clock advances by each query's critical path, and the `heatmap`
// command reports the accumulated ring-space load by epoch —
// with --heatmap-out/--series-out writing the full exports
// (.json or .csv by extension; --epoch-ticks sets the epoch width).

#include <fstream>
#include <iostream>
#include <sstream>

#include "squid/core/serialize.hpp"
#include "squid/core/system.hpp"
#include "squid/obs/export.hpp"
#include "squid/obs/hotspot.hpp"
#include "squid/stats/summary.hpp"

namespace {

using namespace squid;

keyword::KeywordSpace make_space() {
  return keyword::KeywordSpace(
      {keyword::StringCodec("abcdefghijklmnopqrstuvwxyz", 6),
       keyword::StringCodec("abcdefghijklmnopqrstuvwxyz", 6)});
}

void print_help() {
  std::cout <<
      "commands:\n"
      "  build <nodes> [seed]       create a fresh network\n"
      "  publish <name> <kw1> <kw2> index an element\n"
      "  unpublish <name> <kw1> <kw2>\n"
      "  query <text>               e.g. query (comp*, a-m)\n"
      "  explain <text>             run a query and print its span trace\n"
      "  heatmap                    per-epoch load, imbalance + hotspot report\n"
      "  loads                      load distribution summary\n"
      "  stats                      system counters\n"
      "  save <file> | load <file>  snapshot to/from disk\n"
      "  help | quit\n";
}

void print_usage(const char* argv0) {
  std::cout << "usage: " << argv0
            << " [--help] [--trace-out=FILE] [--epoch-ticks=N]\n"
            << "                 [--heatmap-out=FILE] [--series-out=FILE]\n"
            << "\nInteractive shell over a simulated Squid deployment;\n"
            << "reads commands from stdin, one per line.\n\n";
  print_help();
  std::cout << "\nflags:\n"
            << "  --help             print this message and exit\n"
            << "  --trace-out=FILE   also write each `explain` trace as\n"
            << "                     Perfetto trace_event JSON to FILE\n"
            << "  --epoch-ticks=N    telemetry epoch width in virtual ticks\n"
            << "                     (default 64)\n"
            << "  --heatmap-out=FILE `heatmap` writes the epoch x node load\n"
            << "                     heatmap here (.json or .csv)\n"
            << "  --series-out=FILE  `heatmap` writes the per-epoch imbalance\n"
            << "                     series here (.json or .csv)\n";
}

} // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::string heatmap_out;
  std::string series_out;
  sim::Time epoch_ticks = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return 0;
    }
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
      continue;
    }
    if (arg.rfind("--heatmap-out=", 0) == 0) {
      heatmap_out = arg.substr(14);
      continue;
    }
    if (arg.rfind("--series-out=", 0) == 0) {
      series_out = arg.substr(13);
      continue;
    }
    if (arg.rfind("--epoch-ticks=", 0) == 0) {
      epoch_ticks = std::max<sim::Time>(1, std::stoull(arg.substr(14)));
      continue;
    }
    std::cerr << "unknown flag '" << arg << "' — try --help\n";
    return 2;
  }

  std::unique_ptr<core::SquidSystem> sys;
  // Session telemetry: one sampler for the shell's lifetime; the virtual
  // clock advances by each query's critical path, so epochs group the
  // session's activity in the order it happened.
  std::optional<obs::EpochSampler> sampler;
  sim::Time session_clock = 0;
  const auto attach_sampler = [&] {
    sampler.emplace(epoch_ticks);
    session_clock = 0;
    sys->set_telemetry(&*sampler);
  };
  const auto advance_clock = [&](sim::Time hops) {
    if (!sampler.has_value()) return;
    session_clock += std::max<sim::Time>(1, hops);
    sampler->advance_to(session_clock);
  };
  Rng rng(1);
  std::cout << "squid shell — 2D keyword space, 'help' for commands\n";

  std::string line;
  while (std::cout << "squid> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream args(line);
    std::string command;
    args >> command;
    try {
      if (command.empty()) continue;
      if (command == "quit" || command == "exit") break;
      if (command == "help") {
        print_help();
      } else if (command == "build") {
        std::size_t nodes = 64;
        std::uint64_t seed = 1;
        args >> nodes >> seed;
        rng.reseed(seed);
        sys = std::make_unique<core::SquidSystem>(make_space());
        sys->build_network(std::max<std::size_t>(1, nodes), rng);
        attach_sampler();
        std::cout << "network of " << sys->ring().size() << " peers ready\n";
      } else if (!sys && command != "load") {
        std::cout << "no network yet — run 'build <nodes>' first\n";
      } else if (command == "publish" || command == "unpublish") {
        std::string name, kw1, kw2;
        args >> name >> kw1 >> kw2;
        if (kw2.empty()) {
          std::cout << "usage: " << command << " <name> <kw1> <kw2>\n";
          continue;
        }
        const core::DataElement element{name, {kw1, kw2}};
        if (command == "publish") {
          sys->publish(element);
          std::cout << "indexed under (" << kw1 << ", " << kw2 << ")\n";
        } else {
          std::cout << (sys->unpublish(element) ? "removed\n" : "not found\n");
        }
      } else if (command == "query") {
        std::string text;
        std::getline(args, text);
        const auto result = sys->query(text, rng);
        advance_clock(static_cast<sim::Time>(result.stats.critical_path_hops));
        std::cout << result.stats.matches << " matches ("
                  << result.stats.messages << " msgs, "
                  << result.stats.processing_nodes << " peers, depth "
                  << result.stats.critical_path_hops << " hops):";
        for (const auto& e : result.elements) std::cout << ' ' << e.name;
        std::cout << '\n';
      } else if (command == "explain") {
        if (!obs::kEnabled) {
          std::cout << "tracing unavailable: rebuilt with -DSQUID_OBS=OFF\n";
          continue;
        }
        std::string text;
        std::getline(args, text);
        const bool was_tracing = sys->tracing();
        sys->set_tracing(true);
        const auto result = sys->query(text, rng);
        sys->set_tracing(was_tracing);
        advance_clock(static_cast<sim::Time>(result.stats.critical_path_hops));
        if (!result.trace) {
          std::cout << "no trace recorded\n";
          continue;
        }
        obs::print_span_tree(*result.trace, std::cout);
        std::cout << result.stats.matches << " matches, "
                  << result.stats.messages << " msgs, depth "
                  << result.stats.critical_path_hops << " hops\n";
        if (!trace_out.empty()) {
          std::ofstream out(trace_out);
          if (out) {
            obs::write_trace_json(*result.trace, out);
            std::cout << "trace written to " << trace_out << '\n';
          } else {
            std::cout << "cannot write " << trace_out << '\n';
          }
        }
      } else if (command == "heatmap") {
        if (!obs::kEnabled) {
          std::cout << "telemetry unavailable: built with -DSQUID_OBS=OFF\n";
          continue;
        }
        if (!sampler.has_value()) {
          std::cout << "no telemetry yet — run 'build <nodes>' first\n";
          continue;
        }
        const obs::LoadSeries series = sampler->finish();
        const auto imbalance = obs::derive_imbalance(series);
        std::cout << series.epochs.size() << " epoch(s) of "
                  << series.epoch_ticks << " ticks\n";
        for (const auto& row : imbalance) {
          std::cout << "  epoch " << row.epoch << ": load " << row.total
                    << " over " << row.nodes << " peer(s), gini " << row.gini
                    << ", max/mean " << row.max_over_mean << '\n';
        }
        // Hotspot report over the session so far, with the detector's
        // absolute floor calibrated by the documented rule
        // (docs/LOAD_BALANCING.md §4) — the same floor bench/ext_hotspot
        // uses, so the CLI and the benches agree on what counts as hot.
        const double factor = sys->config().hotspot_min_load_factor;
        obs::HotspotConfig hot_config;
        hot_config.min_load = obs::calibrated_min_load(
            hot_config.min_load, series,
            series.epochs.empty() ? 0 : series.epochs.back().epoch + 1,
            factor);
        obs::Registry heatmap_registry; // keep the global counters clean
        obs::HotspotDetector detector(hot_config, &heatmap_registry);
        detector.observe_all(series);
        std::cout << "hotspot floor " << hot_config.min_load << " (factor "
                  << factor << " x p95 epoch load), "
                  << detector.events().size() << " transition(s), "
                  << detector.active() << " node(s) hot now\n";
        for (const auto& hot : detector.top_hot(3)) {
          std::cout << "  node load " << hot.load << " baseline "
                    << hot.baseline << (hot.hot ? "  [hot]" : "") << '\n';
        }
        if (!heatmap_out.empty()) {
          std::cout << (obs::dump_heatmap(series, heatmap_out)
                            ? "heatmap written to " + heatmap_out
                            : "cannot write " + heatmap_out)
                    << '\n';
        }
        if (!series_out.empty()) {
          std::cout << (obs::dump_series(series, series_out)
                            ? "series written to " + series_out
                            : "cannot write " + series_out)
                    << '\n';
        }
      } else if (command == "loads") {
        Summary loads;
        for (const auto& [id, load] : sys->node_loads())
          loads.add(static_cast<double>(load));
        std::cout << "keys/peer: mean " << loads.mean() << ", max "
                  << loads.max() << ", cv " << loads.cv() << '\n';
      } else if (command == "stats") {
        std::cout << sys->ring().size() << " peers, " << sys->key_count()
                  << " keys, " << sys->element_count() << " elements, index 2^"
                  << sys->curve().index_bits() << " (" << sys->curve().name()
                  << ")\n";
      } else if (command == "save") {
        std::string file;
        args >> file;
        std::ofstream out(file);
        if (!out) {
          std::cout << "cannot write " << file << '\n';
          continue;
        }
        core::save_snapshot(*sys, out);
        std::cout << "saved to " << file << '\n';
      } else if (command == "load") {
        std::string file;
        args >> file;
        std::ifstream in(file);
        if (!in) {
          std::cout << "cannot read " << file << '\n';
          continue;
        }
        sys = std::make_unique<core::SquidSystem>(make_space());
        core::load_snapshot(*sys, in);
        attach_sampler();
        std::cout << "restored " << sys->ring().size() << " peers, "
                  << sys->element_count() << " elements\n";
      } else {
        std::cout << "unknown command '" << command << "' — try 'help'\n";
      }
    } catch (const std::exception& error) {
      std::cout << "error: " << error.what() << '\n';
    }
  }
  std::cout << '\n';
  return 0;
}
